package classify

import (
	"math"
	"strings"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fetch"
	"goingwild/internal/htmlx"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

func testRig(t *testing.T, order uint) (*wildnet.World, *websim.Server, *fetch.Client) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	web := websim.New(w, wildnet.At(50))
	client := fetch.NewClient(web, nil)
	return w, web, client
}

func labelOf(t *testing.T, web *websim.Server, ip uint32, host string) Label {
	t.Helper()
	resp, ok := web.HTTP(ip, host, false)
	if !ok {
		return LNoPayload
	}
	return LabelPage(resp.Status, resp.Body, htmlx.Extract(resp.Body))
}

func TestLabelPageAgainstPlantedRoles(t *testing.T) {
	w, web, _ := testRig(t, 16)
	cases := []struct {
		role wildnet.Role
		slot int
		host string
		want Label
	}{
		{wildnet.RoleCensorPage, 3, "youporn.com", LCensorship},
		{wildnet.RoleBlockPage, 2, "irc.zief.pl", LBlocking},
		{wildnet.RoleErrorPage, 0, "chase.com", LHTTPError},
		{wildnet.RoleErrorPage, 5, "chase.com", LHTTPError}, // "It works!"
		{wildnet.RoleParking, 1, "ghoogle.com", LParking},
		{wildnet.RoleSearchPage, 2, "amason.com", LSearch},
		{wildnet.RoleLoginPortal, 0, "facebook.com", LLogin},
	}
	for _, c := range cases {
		ip := w.RoleAddr(c.role, c.slot)
		if got := labelOf(t, web, ip, c.host); got != c.want {
			t.Errorf("role %v slot %d: label %v, want %v", c.role, c.slot, got, c.want)
		}
	}
}

func TestRouterLoginLabeled(t *testing.T) {
	w, web, _ := testRig(t, 16)
	// A resolver with an HTTP-serving device must label as Login.
	for u := uint32(0); u < 1<<16; u++ {
		resp, ok := web.HTTP(u, "chase.com", false)
		if !ok {
			continue
		}
		if role, _ := w.RoleOf(u); role != wildnet.RoleNone {
			continue
		}
		got := LabelPage(resp.Status, resp.Body, htmlx.Extract(resp.Body))
		if got != LLogin {
			t.Errorf("device page labeled %v, want Login", got)
		}
		return
	}
	t.Skip("no HTTP-serving resolver at this order")
}

func TestLabelPriorityCensorshipOverBlocking(t *testing.T) {
	body := `<html><title>x</title><p>Access to this website has been blocked by the order of the Turkish court.</p></html>`
	if got := LabelPage(200, body, htmlx.Extract(body)); got != LCensorship {
		t.Errorf("label = %v, want censorship", got)
	}
}

func TestTable5Accumulator(t *testing.T) {
	tb := NewTable5()
	tb.AddDomain(domains.Adult, "a.com", map[Label]int{LCensorship: 8, LHTTPError: 2}, 10)
	tb.AddDomain(domains.Adult, "b.com", map[Label]int{LCensorship: 4, LParking: 6}, 10)
	tb.Finalize()
	c := tb.Share(domains.Adult, LCensorship)
	if math.Abs(c.Avg-0.6) > 1e-9 {
		t.Errorf("censorship avg = %f, want 0.6", c.Avg)
	}
	if c.Max != 0.8 || c.MaxDomain != "a.com" {
		t.Errorf("censorship max = %f@%s", c.Max, c.MaxDomain)
	}
	if tb.DomainsIn(domains.Adult) != 2 {
		t.Errorf("domains = %d", tb.DomainsIn(domains.Adult))
	}
	// Zero-denominator domains are ignored.
	tb2 := NewTable5()
	tb2.AddDomain(domains.Adult, "c.com", nil, 0)
	tb2.Finalize()
	if tb2.DomainsIn(domains.Adult) != 0 {
		t.Error("empty domain counted")
	}
}

func TestBuildGroundTruth(t *testing.T) {
	w, _, client := testRig(t, 16)
	trusted := func(name string) ([]uint32, dnswire.RCode) {
		return w.LegitAddrs(name, "DE")
	}
	gt := BuildGroundTruth(client, trusted, []string{"chase.com", "imap.gmail.com", "ghoogle.com"})
	if gt.Bodies["chase.com"] == "" {
		t.Error("no GT body for chase.com")
	}
	if !strings.Contains(gt.Bodies["chase.com"], "password") {
		t.Error("GT banking page lacks login form")
	}
	if gt.MailBanners["imap.gmail.com"] == "" {
		t.Error("no GT mail banner")
	}
	if gt.Bodies["ghoogle.com"] != "" {
		t.Error("NX domain produced a GT body")
	}
}

func TestLooksLikePhish(t *testing.T) {
	gt := "<html><title>Bank</title><form action=\"https://bank/auth\" method=\"POST\"><input type=\"password\"></form></html>"
	phish := strings.Repeat("<img src=\"s.jpg\">", 46) + "<form action=\"gate.php\" method=\"POST\"></form>"
	if !looksLikePhish(phish, gt) {
		t.Error("image-reconstruction phish not flagged")
	}
	if looksLikePhish(gt, gt) {
		t.Error("GT flagged as phish")
	}
	collector := strings.Replace(gt, "https://bank/auth", "collect.php", 1)
	if !looksLikePhish(collector, gt) {
		t.Error("collector form not flagged")
	}
}

func TestFigure4Distributions(t *testing.T) {
	// Two resolvers in CN (one censoring), one in US.
	scan := &scanner.DomainScanResult{
		Resolvers: []uint32{1, 2, 3},
		Names:     []string{"facebook.com"},
		Answers: [][]scanner.TupleAnswer{{
			{ResolverIdx: 0, RCode: dnswire.RCodeNoError, Addrs: []uint32{50}, Responses: 1},
			{ResolverIdx: 1, RCode: dnswire.RCodeNoError, Addrs: []uint32{60}, Responses: 1},
			{ResolverIdx: 2, RCode: dnswire.RCodeNoError, Addrs: []uint32{70}, Responses: 1},
		}},
	}
	pre := &prefilter.Result{
		Verdicts: [][]prefilter.Class{{prefilter.ClassUnexpected, prefilter.ClassLegit, prefilter.ClassLegit}},
	}
	country := func(ri int) string {
		if ri == 2 {
			return "US"
		}
		return "CN"
	}
	f := BuildFigure4(scan, pre, country, []string{"facebook.com"})
	if f.All["CN"] < 0.6 || f.All["US"] < 0.3 {
		t.Errorf("all distribution = %v", f.All)
	}
	if f.Unexpected["CN"] != 1.0 {
		t.Errorf("unexpected distribution = %v", f.Unexpected)
	}
	if f.UnexpectedCount != 1 {
		t.Errorf("unexpected count = %d", f.UnexpectedCount)
	}
}

func TestCensorCoverageThreshold(t *testing.T) {
	// Countries with fewer than 5 answering resolvers are dropped.
	n := 12
	answers := make([]scanner.TupleAnswer, n)
	verdicts := make([]prefilter.Class, n)
	resolvers := make([]uint32, n)
	for i := 0; i < n; i++ {
		resolvers[i] = uint32(i)
		answers[i] = scanner.TupleAnswer{ResolverIdx: i, RCode: dnswire.RCodeNoError, Addrs: []uint32{9}, Responses: 1}
		if i < 9 {
			verdicts[i] = prefilter.ClassUnexpected
		} else {
			verdicts[i] = prefilter.ClassLegit
		}
	}
	scan := &scanner.DomainScanResult{Resolvers: resolvers, Names: []string{"x.com"}, Answers: [][]scanner.TupleAnswer{answers}}
	pre := &prefilter.Result{Verdicts: [][]prefilter.Class{verdicts}}
	country := func(ri int) string {
		if ri < 10 {
			return "MN"
		}
		return "VA" // only 2 resolvers: below threshold
	}
	cov := CensorCoverage(scan, pre, country, "x.com")
	if cov["MN"] != 0.9 {
		t.Errorf("MN coverage = %f, want 0.9", cov["MN"])
	}
	if _, ok := cov["VA"]; ok {
		t.Error("tiny country not dropped")
	}
}
