package classify

import (
	"sort"

	"goingwild/internal/domains"
)

// Stat is one Table-5 cell: the average share of a label among a
// category's suspicious resolvers, plus the highest share any single
// domain of the category reached.
type Stat struct {
	Avg       float64
	Max       float64
	MaxDomain string
}

// Table5 accumulates the label×category matrix.
type Table5 struct {
	// perDomain[category][domain][label] = share of that domain's
	// suspicious (payload-bearing) resolvers.
	perDomain map[domains.Category]map[string]map[Label]float64
	// Cells is the finalized matrix.
	Cells map[domains.Category]map[Label]Stat
}

// NewTable5 builds an empty accumulator.
func NewTable5() *Table5 {
	return &Table5{
		perDomain: map[domains.Category]map[string]map[Label]float64{},
		Cells:     map[domains.Category]map[Label]Stat{},
	}
}

// AddDomain records one scanned domain's label counts. denom is the
// number of suspicious resolvers with HTTP payload for the domain.
func (t *Table5) AddDomain(cat domains.Category, name string, counts map[Label]int, denom int) {
	if denom == 0 {
		return
	}
	if t.perDomain[cat] == nil {
		t.perDomain[cat] = map[string]map[Label]float64{}
	}
	shares := map[Label]float64{}
	for _, l := range TableLabels {
		shares[l] = float64(counts[l]) / float64(denom)
	}
	t.perDomain[cat][name] = shares
}

// Finalize computes per-category averages and maxima.
func (t *Table5) Finalize() {
	for cat, byDomain := range t.perDomain {
		// Visit domains in name order so MaxDomain is stable when two
		// domains tie on share.
		names := make([]string, 0, len(byDomain))
		for name := range byDomain {
			names = append(names, name)
		}
		sort.Strings(names)
		cell := map[Label]Stat{}
		for _, l := range TableLabels {
			var sum float64
			st := Stat{}
			for _, name := range names {
				v := byDomain[name][l]
				sum += v
				if v > st.Max {
					st.Max = v
					st.MaxDomain = name
				}
			}
			st.Avg = sum / float64(len(byDomain))
			cell[l] = st
		}
		t.Cells[cat] = cell
	}
}

// Share returns a finalized cell.
func (t *Table5) Share(cat domains.Category, l Label) Stat {
	if cell, ok := t.Cells[cat]; ok {
		return cell[l]
	}
	return Stat{}
}

// DomainsIn returns how many domains of a category contributed.
func (t *Table5) DomainsIn(cat domains.Category) int {
	return len(t.perDomain[cat])
}
