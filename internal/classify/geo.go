package classify

import (
	"sort"

	"goingwild/internal/dnswire"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// Figure4 holds the per-country resolver distributions of Figure 4: for a
// set of domains (the paper uses Facebook, Twitter, and YouTube), the
// country mix of all answering resolvers versus the mix of resolvers with
// unexpected answers.
type Figure4 struct {
	Domains    []string
	All        map[string]float64
	Unexpected map[string]float64
	// UnexpectedCount is the number of distinct suspicious resolvers.
	UnexpectedCount int
}

// TopCountries returns the n largest countries of a distribution,
// descending.
func TopCountries(dist map[string]float64, n int) []struct {
	Country string
	Share   float64
} {
	out := make([]struct {
		Country string
		Share   float64
	}, 0, len(dist))
	for c, s := range dist {
		out = append(out, struct {
			Country string
			Share   float64
		}{c, s})
	}
	// dist is a map: break share ties by country code for stable output.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Country < out[j].Country
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BuildFigure4 computes the two distributions for the given domain names.
func BuildFigure4(scan *scanner.DomainScanResult, pre *prefilter.Result, country func(resolverIdx int) string, names []string) *Figure4 {
	nameIdx := map[int]bool{}
	for ni, n := range scan.Names {
		for _, want := range names {
			if dnswire.EqualNamesFold(n, want) {
				nameIdx[ni] = true
			}
		}
	}
	allRes := map[int]bool{}
	unexpRes := map[int]bool{}
	for ni := range nameIdx {
		for ri := range scan.Resolvers {
			if scan.Answers[ni][ri].Answered() {
				allRes[ri] = true
			}
			if pre.Verdicts[ni][ri] == prefilter.ClassUnexpected {
				unexpRes[ri] = true
			}
		}
	}
	f := &Figure4{
		Domains:         names,
		All:             map[string]float64{},
		Unexpected:      map[string]float64{},
		UnexpectedCount: len(unexpRes),
	}
	for ri := range allRes {
		f.All[country(ri)]++
	}
	for ri := range unexpRes {
		f.Unexpected[country(ri)]++
	}
	normalize(f.All)
	normalize(f.Unexpected)
	return f
}

// CensorCoverage measures, per country, the share of a country's
// answering resolvers that returned unexpected answers for a domain —
// the compliance analysis of §4.2 (99.7% of Chinese resolvers for the
// blocked trio, 78.9% of Mongolian resolvers for adult domains, ...).
func CensorCoverage(scan *scanner.DomainScanResult, pre *prefilter.Result, country func(resolverIdx int) string, name string) map[string]float64 {
	ni := -1
	for i, n := range scan.Names {
		if dnswire.EqualNamesFold(n, name) {
			ni = i
			break
		}
	}
	if ni < 0 {
		return nil
	}
	total := map[string]int{}
	blocked := map[string]int{}
	for ri := range scan.Resolvers {
		if !scan.Answers[ni][ri].Answered() {
			continue
		}
		c := country(ri)
		total[c]++
		if pre.Verdicts[ni][ri] == prefilter.ClassUnexpected {
			blocked[c]++
		}
	}
	out := map[string]float64{}
	for c, n := range total {
		if n >= 5 { // require a minimal population for a stable ratio
			out[c] = float64(blocked[c]) / float64(n)
		}
	}
	return out
}

func normalize(m map[string]float64) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	if sum == 0 {
		return
	}
	for k := range m {
		m[k] /= sum
	}
}
