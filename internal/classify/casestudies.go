package classify

import (
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// CaseStudies aggregates the §4.3 findings.
type CaseStudies struct {
	// Ad redirects / injections: hosts replacing or augmenting ad
	// traffic, hosts blanking ads, and search mimicries with banners.
	AdInjectIPs, AdInjectResolvers         int
	AdBlockIPs, AdBlockResolvers           int
	AdFakeSearchIPs, AdFakeSearchResolvers int
	// Transparent proxies: IPs serving original content for all
	// requested domains, split by TLS capability.
	ProxyTLSIPs, ProxyTLSResolvers     int
	ProxyPlainIPs, ProxyPlainResolvers int
	// Phishing.
	PhishPayPalIPs, PhishPayPalResolvers int
	PhishPayPalTLS                       int // self-signed HTTPS phish hosts
	PhishBankIPs, PhishBankResolvers     int
	PhishOtherIPs, PhishOtherResolvers   int
	// Mail interception.
	MailListenerIPs, MailRedirResolvers int
	MailMimicIPs                        int
	// Malware delivery.
	MalwareIPs, MalwareResolvers int
	// Injected double responses (Great Firewall signature).
	DoubleResponseResolvers int
	// Degenerate answer patterns (§4.1).
	SelfIPResolvers   int
	StaticIPResolvers int
	SameSetResolvers  int
}

// updateDomains lists the software-update names the malware droppers
// impersonate.
func isUpdateDomain(cn string) bool {
	switch cn {
	case "update.adobe.example", "ardownload.adobe.example",
		"update.oracle.example", "windowsupdate.com", "update.microsoft.com":
		return true
	}
	return false
}

func isSearchFront(cn string) bool {
	return cn == "google.com" || cn == "bing.com" || cn == "duckduckgo.com"
}

// runCaseStudies executes the in-depth detectors over the acquired data.
func (p *Pipeline) runCaseStudies(scan *scanner.DomainScanResult, pre *prefilter.Result, gt *GroundTruth, pages map[pageKey]*page, tupleIP map[int]map[int]uint32) CaseStudies {
	var cs CaseStudies

	// Per-IP views for proxy detection and the ad/phish/mail studies.
	type ipView struct {
		identicalToGT int // distinct domains served byte-identical to GT
		domains       int
		resolvers     map[int]struct{}
	}
	views := map[uint32]*ipView{}
	addView := func(ip uint32, ri int) *ipView {
		v := views[ip]
		if v == nil {
			v = &ipView{resolvers: map[int]struct{}{}}
			views[ip] = v
		}
		v.resolvers[ri] = struct{}{}
		return v
	}

	adInjectIPs := map[uint32]struct{}{}
	adBlockIPs := map[uint32]struct{}{}
	adFakeIPs := map[uint32]struct{}{}
	phishPayPalIPs := map[uint32]struct{}{}
	phishPayPalTLS := map[uint32]struct{}{}
	phishBankIPs := map[uint32]struct{}{}
	phishOtherIPs := map[uint32]struct{}{}
	mailIPs := map[uint32]struct{}{}
	mailMimicIPs := map[uint32]struct{}{}
	malwareIPs := map[uint32]struct{}{}

	adInjectRes := map[int]struct{}{}
	adBlockRes := map[int]struct{}{}
	adFakeRes := map[int]struct{}{}
	phishPayPalRes := map[int]struct{}{}
	phishBankRes := map[int]struct{}{}
	phishOtherRes := map[int]struct{}{}
	mailRes := map[int]struct{}{}
	malwareRes := map[int]struct{}{}

	seenDomainPerIP := map[uint32]map[int]struct{}{}

	for ni, byRes := range tupleIP {
		cn := dnswire.CanonicalName(scan.Names[ni])
		d, _ := domains.ByName(cn)
		for ri, ip := range byRes {
			v := addView(ip, ri)
			if seenDomainPerIP[ip] == nil {
				seenDomainPerIP[ip] = map[int]struct{}{}
			}
			if _, dup := seenDomainPerIP[ip][ni]; !dup {
				seenDomainPerIP[ip][ni] = struct{}{}
				v.domains++
				pg := pages[pageKey{ni, ip}]
				if pg.res.OK && gt.Bodies[cn] != "" && pg.res.Body == gt.Bodies[cn] {
					v.identicalToGT++
				}
			}
			pg := pages[pageKey{ni, ip}]

			// Mail interception: redirected MX hosts that listen.
			if d.Category == domains.MX {
				if banner, ok := p.Client.MailBanner(ip, mailProtoOf(cn)); ok {
					mailIPs[ip] = struct{}{}
					mailRes[ri] = struct{}{}
					if gtb := gt.MailBanners[cn]; gtb != "" && banner == gtb {
						mailMimicIPs[ip] = struct{}{}
					}
				}
				continue
			}
			if !pg.res.OK {
				continue
			}
			body := pg.res.Body

			// Ad manipulation.
			if d.Category == domains.Ads && gt.Bodies[cn] != "" && body != gt.Bodies[cn] {
				switch {
				case strings.Contains(body, "placeholder"):
					adBlockIPs[ip] = struct{}{}
					adBlockRes[ri] = struct{}{}
				case strings.Contains(body, "<img") || strings.Contains(body, "<iframe"),
					strings.Contains(body, "createElement('script')"):
					adInjectIPs[ip] = struct{}{}
					adInjectRes[ri] = struct{}{}
				}
			}
			if isSearchFront(cn) && hasPasswordInput(body) == false &&
				strings.Contains(body, "Search") && strings.Contains(body, "banner") {
				adFakeIPs[ip] = struct{}{}
				adFakeRes[ri] = struct{}{}
			}

			// Phishing: credential-bearing lookalikes of banking sites.
			if cn == "paypal.com" && looksLikePhish(body, gt.Bodies[cn]) {
				phishPayPalIPs[ip] = struct{}{}
				phishPayPalRes[ri] = struct{}{}
				if valid, selfSigned, ok := p.Client.TLSValid(ip, cn); ok && selfSigned && !valid {
					phishPayPalTLS[ip] = struct{}{}
				}
			} else if cn == "intesasanpaolo.it" && looksLikePhish(body, gt.Bodies[cn]) {
				phishBankIPs[ip] = struct{}{}
				phishBankRes[ri] = struct{}{}
			} else if d.Category == domains.Banking && looksLikePhish(body, gt.Bodies[cn]) {
				phishOtherIPs[ip] = struct{}{}
				phishOtherRes[ri] = struct{}{}
			}

			// Malware delivery on update domains.
			if isUpdateDomain(cn) && strings.Contains(body, ".exe") {
				if malicious, ok := p.Client.Detonate(ip, "/flash_update.exe"); ok && malicious {
					malwareIPs[ip] = struct{}{}
					malwareRes[ri] = struct{}{}
				}
			}
		}
	}

	// Transparent proxies: an IP that served GT-identical content for
	// at least three distinct domains proxies everything.
	for ip, v := range views {
		if v.identicalToGT < 3 {
			continue
		}
		if valid, _, ok := p.Client.TLSValid(ip, "chase.com"); ok && valid {
			cs.ProxyTLSIPs++
			cs.ProxyTLSResolvers += len(v.resolvers)
		} else {
			cs.ProxyPlainIPs++
			cs.ProxyPlainResolvers += len(v.resolvers)
		}
	}

	cs.AdInjectIPs, cs.AdInjectResolvers = len(adInjectIPs), len(adInjectRes)
	cs.AdBlockIPs, cs.AdBlockResolvers = len(adBlockIPs), len(adBlockRes)
	cs.AdFakeSearchIPs, cs.AdFakeSearchResolvers = len(adFakeIPs), len(adFakeRes)
	cs.PhishPayPalIPs, cs.PhishPayPalResolvers = len(phishPayPalIPs), len(phishPayPalRes)
	cs.PhishPayPalTLS = len(phishPayPalTLS)
	cs.PhishBankIPs, cs.PhishBankResolvers = len(phishBankIPs), len(phishBankRes)
	cs.PhishOtherIPs, cs.PhishOtherResolvers = len(phishOtherIPs), len(phishOtherRes)
	cs.MailListenerIPs, cs.MailRedirResolvers = len(mailIPs), len(mailRes)
	cs.MailMimicIPs = len(mailMimicIPs)
	cs.MalwareIPs, cs.MalwareResolvers = len(malwareIPs), len(malwareRes)

	// Double responses and degenerate answer patterns come from the raw
	// scan data.
	doubles := map[int]struct{}{}
	selfIP := map[int]int{}
	answersByResolver := map[int]map[int]string{}
	for ni := range scan.Names {
		for ri := range scan.Resolvers {
			a := &scan.Answers[ni][ri]
			if a.Responses > 1 {
				doubles[ri] = struct{}{}
			}
			if pre.Verdicts[ni][ri] != prefilter.ClassUnexpected {
				continue
			}
			for _, ip := range a.Addrs {
				if ip == scan.Resolvers[ri] {
					selfIP[ri]++
					break
				}
			}
			if answersByResolver[ri] == nil {
				answersByResolver[ri] = map[int]string{}
			}
			answersByResolver[ri][ni] = addrSetKey(a.Addrs)
		}
	}
	cs.DoubleResponseResolvers = len(doubles)
	for _, n := range selfIP {
		if n >= 2 {
			cs.SelfIPResolvers++
		}
	}
	for _, byName := range answersByResolver {
		if len(byName) < 2 {
			continue
		}
		sets := map[string]int{}
		for _, key := range byName {
			sets[key]++
		}
		for _, n := range sets {
			if n >= 2 {
				cs.SameSetResolvers++
				break
			}
		}
		if len(sets) == 1 && len(byName) >= 5 {
			cs.StaticIPResolvers++
		}
	}
	return cs
}

// looksLikePhish flags credential-capturing lookalikes: a page that
// differs from the ground truth but carries a login form posting to a PHP
// collector, or the image-reconstruction trick (§4.3: 46 <img> tags plus
// an HTML form forwarding credentials to a php file).
func looksLikePhish(body, gtBody string) bool {
	if gtBody != "" && body == gtBody {
		return false
	}
	post := strings.Contains(body, "method=\"POST\"")
	php := strings.Contains(body, ".php")
	imgs := strings.Count(body, "<img")
	if post && php && imgs >= 30 {
		return true
	}
	if php && (hasPasswordInput(body) || strings.Contains(body, "collect")) {
		return true
	}
	// Injected collector script on an otherwise genuine-looking page.
	if strings.Contains(body, "collector-") {
		return true
	}
	return false
}

func addrSetKey(addrs []uint32) string {
	var sb strings.Builder
	for _, a := range addrs {
		sb.WriteByte(byte(a >> 24))
		sb.WriteByte(byte(a >> 16))
		sb.WriteByte(byte(a >> 8))
		sb.WriteByte(byte(a))
	}
	return sb.String()
}
