package wildnet

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
)

// TestUDPGatewayBatchRoundTrip drives the gateway through SendBatch —
// the sendmmsg path where the platform has it, the serial fallback
// elsewhere — and checks every probe of the batch gets its response.
func TestUDPGatewayBatchRoundTrip(t *testing.T) {
	w := testWorld(t, 16)
	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	tr, err := DialGateway(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// A batch of queries to honest resolvers, each with a distinct
	// transaction ID so responses are attributable.
	var resolvers []uint32
	for u := uint32(1); u < 1<<16 && len(resolvers) < 24; u++ {
		p, ok := w.ProfileAt(u, At(0))
		if ok && p.RCode == RCNoError && p.Manip == ManipHonest && !p.MisSourced && w.VisibleFrom(u, VantagePrimary, At(0)) {
			resolvers = append(resolvers, u)
		}
	}
	if len(resolvers) < 8 {
		t.Fatalf("only %d usable resolvers in the test world", len(resolvers))
	}
	probes := make([]Probe, len(resolvers))
	for i, u := range resolvers {
		q := dnswire.NewQuery(uint16(i+1), domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
		wire, err := q.PackBytes()
		if err != nil {
			t.Fatal(err)
		}
		probes[i] = Probe{Dst: w.Addr(u), DstPort: 53, SrcPort: 41000, Payload: wire}
	}

	var mu sync.Mutex
	got := map[uint16]bool{}
	done := make(chan struct{})
	tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil || !m.Header.QR {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		got[m.Header.ID] = true
		if len(got) == len(probes) {
			close(done)
		}
	})

	n, err := tr.SendBatch(context.Background(), probes)
	if err != nil {
		t.Fatalf("SendBatch: %v (after %d probes)", err, n)
	}
	if n != len(probes) {
		t.Fatalf("SendBatch sent %d of %d probes", n, len(probes))
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("only %d/%d batch responses arrived", len(got), len(probes))
	}
	for i := range probes {
		if !got[uint16(i+1)] {
			t.Errorf("probe %d of the batch got no response", i)
		}
	}

	// A cancelled context must refuse the batch before any kernel write.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n, err := tr.SendBatch(ctx, probes); err == nil || n != 0 {
		t.Errorf("cancelled SendBatch sent %d, err %v", n, err)
	}
	// IPv6 destinations are rejected with the index of the bad probe.
	bad := []Probe{probes[0], {Dst: netip.MustParseAddr("2001:db8::1"), DstPort: 53, Payload: []byte{1}}}
	if n, err := tr.SendBatch(context.Background(), bad); err == nil || n != 1 {
		t.Errorf("IPv6 probe accepted (n=%d err=%v)", n, err)
	}
}

// TestUDPGatewaySerialFallbackMatchesBatch pins that the serial write
// path the non-sendmmsg platforms (and latched-unsupported kernels) use
// delivers the same frames.
func TestUDPGatewaySerialFallbackMatchesBatch(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && !p.MisSourced
	})
	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	tr, err := DialGateway(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	responses := make(chan uint16, 8)
	tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
		if m, err := dnswire.Unpack(payload); err == nil && m.Header.QR {
			responses <- m.Header.ID
		}
	})
	q := dnswire.NewQuery(99, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	wire, _ := q.PackBytes()
	fr := make([]byte, tunnelHeaderLen+len(wire))
	a4 := w.Addr(u).As4()
	copy(fr[0:4], a4[:])
	fr[4], fr[5] = 0, 53
	fr[6], fr[7] = 0xA0, 0x28 // src port 41000
	copy(fr[tunnelHeaderLen:], wire)
	frames := [][]byte{fr}
	if n, err := tr.writeBatchSerial(frames); err != nil || n != len(frames) {
		t.Fatalf("writeBatchSerial = %d, %v", n, err)
	}
	select {
	case id := <-responses:
		if id != 99 {
			t.Errorf("response ID %d, want 99", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no response via serial fallback")
	}
}
