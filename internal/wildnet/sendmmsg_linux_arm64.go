//go:build linux && arm64

package wildnet

// sysSendmmsg is __NR_sendmmsg in the arm64 generic syscall table
// (include/uapi/asm-generic/unistd.h).
const sysSendmmsg = 269
