package wildnet

import (
	"reflect"
	"testing"
)

func TestAttemptsStateRoundTrip(t *testing.T) {
	w := faultyWorld(t, 14, "hostile")
	tr := NewMemTransport(w, VantagePrimary)
	tr.SetTime(At(0))
	// Simulate retransmissions directly through the counter, as Send does.
	for _, rec := range []AttemptRecord{
		{Addr: 9, PayloadHash: 0xabc, N: 3},
		{Addr: 7, PayloadHash: 0xdef, N: 1},
		{Addr: 7, PayloadHash: 0x123, N: 2},
	} {
		for i := uint64(0); i < rec.N; i++ {
			tr.attempts.next(rec.Addr, rec.PayloadHash)
		}
	}
	got := tr.AttemptsState()
	want := []AttemptRecord{
		{Addr: 7, PayloadHash: 0x123, N: 2},
		{Addr: 7, PayloadHash: 0xdef, N: 1},
		{Addr: 9, PayloadHash: 0xabc, N: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AttemptsState = %v, want %v (sorted by addr, then hash)", got, want)
	}

	// Restoring into a fresh transport must recreate the counter exactly:
	// the next transmission of each (addr, hash) observes N predecessors.
	tr2 := NewMemTransport(w, VantagePrimary)
	tr2.SetTime(At(0))
	tr2.RestoreAttempts(got)
	for _, rec := range want {
		if n := tr2.attempts.next(rec.Addr, rec.PayloadHash); n != rec.N {
			t.Fatalf("after restore, next(%d, %#x) = %d, want %d", rec.Addr, rec.PayloadHash, n, rec.N)
		}
	}
	// Restore replaces, never merges.
	tr2.RestoreAttempts(nil)
	if n := tr2.attempts.next(7, 0x123); n != 0 {
		t.Fatalf("RestoreAttempts(nil) left residue: next = %d, want 0", n)
	}
}

func TestAttemptsStateFaultsOff(t *testing.T) {
	w, err := NewWorld(DefaultConfig(14))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMemTransport(w, VantagePrimary)
	if got := tr.AttemptsState(); got != nil {
		t.Fatalf("AttemptsState with faults off = %v, want nil", got)
	}
	tr.RestoreAttempts([]AttemptRecord{{Addr: 1, PayloadHash: 2, N: 3}}) // must not panic
}
