package wildnet

import (
	"goingwild/internal/geodb"
	"goingwild/internal/prand"
)

// Stability classes model the IP-address churn of §2.5: more than 40% of
// the week-0 cohort disappears within a day, 52.2% within a week, and only
// 4.0% still answer at the same address after 55 weeks, while the total
// population stays within the gradual world decline — resolvers move to
// new addresses rather than vanishing.
type Stability uint8

// Churn classes.
const (
	// StabilityDaily hosts sit on very short DHCP leases; their address
	// changes essentially every day.
	StabilityDaily Stability = iota
	// StabilityWeekly hosts rotate addresses with probability
	// weeklyRotateProb per week.
	StabilityWeekly
	// StabilityStatic hosts keep their address for the whole study.
	StabilityStatic
)

// rotateProbOf draws an address's weekly lease-rotation probability.
// Rates are heterogeneous (0.06–0.46, quadratically skewed toward low
// values) because a single geometric rate cannot reproduce Figure 2's
// shape: a steep first-weeks drop together with a ≈4% tail still alive
// after 55 weeks.
func (w *World) rotateProbOf(u uint32) float64 {
	v := prand.UnitOf(w.cfg.Seed, facetRotate, uint64(u), 0xA77E)
	return 0.10 + 0.38*v*v
}

// stabilityOf draws the churn class of an address. The mix depends on the
// owning network: consumer broadband pools are almost entirely dynamic.
func (w *World) stabilityOf(u uint32) Stability {
	return w.stabilityOfDyn(u, w.geo.ASOfU32(u).DynamicPool)
}

// stabilityOfDyn is stabilityOf with the owning network's DynamicPool
// flag already in hand — the transport fast path carries it in its
// per-block cache, so the draw skips the registry lookup.
func (w *World) stabilityOfDyn(u uint32, dynamic bool) Stability {
	v := prand.UnitOf(w.cfg.Seed, facetStability, uint64(u))
	if dynamic {
		switch {
		case v < 0.56:
			return StabilityDaily
		case v < 0.98:
			return StabilityWeekly
		default:
			return StabilityStatic
		}
	}
	switch {
	case v < 0.10:
		return StabilityDaily
	case v < 0.80:
		return StabilityWeekly
	default:
		return StabilityStatic
	}
}

// leaseEpoch identifies the tenancy of an address at a given time: a new
// epoch means a (statistically) new tenant behind the address. The epoch
// doubles as the identity key for all behavioral draws, so a host keeps
// its personality for exactly one lease.
func (w *World) leaseEpoch(u uint32, t Time) uint64 {
	return w.leaseEpochDyn(u, t, w.geo.ASOfU32(u).DynamicPool)
}

// leaseEpochDyn is leaseEpoch with the DynamicPool flag supplied by the
// caller (see stabilityOfDyn).
func (w *World) leaseEpochDyn(u uint32, t Time, dynamic bool) uint64 {
	switch w.stabilityOfDyn(u, dynamic) {
	case StabilityDaily:
		// Leases expire at a per-host phase within the day, so a
		// population identified at some hour thins gradually over the
		// following 24 hours (the cache-snooping study observes this
		// as its unreachable share, §2.6). At hour zero the phase
		// cannot matter — (0+phase)/24 is 0 for every phase — so the
		// first census skips the phase draw entirely.
		if t.AbsHour() == 0 {
			return 1
		}
		phase := int(prand.Hash(w.cfg.Seed, facetSnoopHour, uint64(u)) % 24)
		return uint64((t.AbsHour()+phase)/24) + 1
	case StabilityWeekly:
		// No rotation can have happened before week 1, so the first
		// census (the hottest caller by far) skips the rotation draws
		// entirely.
		if t.Week <= 0 {
			return 0
		}
		// Count rotations up to this week: rotation happens at week k
		// when the per-(address, week) draw fires.
		rot := w.rotateProbOf(u)
		var epoch uint64
		for k := 1; k <= t.Week; k++ {
			if prand.UnitOf(w.cfg.Seed, facetRotate, uint64(u), uint64(k)) < rot {
				epoch = uint64(k)
			}
		}
		return epoch
	default:
		return 0
	}
}

// densityAt returns the probability that an address hosts a responding
// resolver at time t. All inputs are per-block, so the value comes from
// the per-week block cache; densitySlow is the defining computation.
func (w *World) densityAt(u uint32, t Time) float64 {
	u &= w.mask
	return w.blockCache(t.Week).blocks[w.geo.BlockOf(u)].density
}

// densitySlow combines the base density, the AS's density multiplier, the
// country's interpolated decline, and any AS collapse or fate event. It
// only runs when the block cache is (re)built for a week.
func (w *World) densitySlow(u uint32, t Time) float64 {
	loc := w.geo.LookupU32(u)
	d := w.cfg.BaseDensity * loc.AS.DensityMul * geodb.CountryDeclineAt(loc.Country, t.Week)
	if c := loc.AS.Collapse; c != nil && t.Week >= c.Week {
		d *= c.Survive
	}
	if loc.AS.Fate != geodb.FateNone && t.Week >= loc.AS.FateWeek {
		switch loc.AS.Fate {
		case geodb.FateFiltering, geodb.FateShutdown:
			return 0
		case geodb.FateBlocksScanner:
			// Hosts still run resolvers; visibility is a per-vantage
			// question handled by the DNS handler.
		}
	}
	if d > 1 {
		d = 1
	}
	return d
}

// ResolverAt reports whether address u hosts a responding DNS server at
// time t. "Responding" spans all rcode classes of Figure 1 (NOERROR,
// REFUSED, SERVFAIL); use ProfileAt for the class.
func (w *World) ResolverAt(u uint32, t Time) bool {
	u = w.Mask(u)
	if w.infra.roleOf(u) != RoleNone {
		return false // infrastructure addresses are servers, not resolvers
	}
	if _, ok := w.stations[u]; ok {
		return true // rare-behavior stations are always-on resolvers
	}
	d := w.densityAt(u, t)
	if d == 0 {
		return false
	}
	epoch := w.leaseEpoch(u, t)
	return prand.UnitOf(w.cfg.Seed, facetSlot, uint64(u), epoch) < d
}

// identity returns the behavioral identity key of the resolver at u at
// time t (valid only when ResolverAt holds).
func (w *World) identity(u uint32, t Time) uint64 {
	return prand.Hash(w.cfg.Seed, uint64(u), w.leaseEpoch(u, t))
}

// VisibleFrom reports whether the resolver's network lets packets from the
// given scan vantage through at time t. The 21 FateBlocksScanner networks
// drop the primary vantage's probes after their fate week but still answer
// the secondary /8 vantage used by the verification scan (§2.2).
func (w *World) VisibleFrom(u uint32, v Vantage, t Time) bool {
	as := w.geo.ASOfU32(w.Mask(u))
	if as.Fate == geodb.FateBlocksScanner && t.Week >= as.FateWeek && v == VantagePrimary {
		return false
	}
	return true
}

// Vantage identifies which of the two scan hosts a probe originates from.
type Vantage uint8

// The two vantage points of §2.2.
const (
	VantagePrimary Vantage = iota
	VantageSecondary
)

// ExpectedPopulation returns the expected number of responding resolvers
// at time t, for sizing rare-behavior quotas and sanity checks.
func (w *World) ExpectedPopulation(t Time) float64 {
	return w.cfg.BaseDensity * float64(w.SpaceSize()) * geodb.WorldDeclineAt(t.Week)
}
