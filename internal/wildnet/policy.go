package wildnet

import (
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/prand"
)

// CensorMode describes how a censoring answer is delivered.
type CensorMode uint8

// Censorship delivery modes.
const (
	CensorNone CensorMode = iota
	// CensorLanding redirects to one of the country's landing pages
	// (the HTML carries "blocked by order of ..." markers, §4.2).
	CensorLanding
	// CensorGFW is the Great-Firewall style: an injected response with
	// a randomly chosen IP address arrives first; for a small share of
	// resolvers the legitimate answer follows milliseconds later.
	CensorGFW
)

// censorRule binds a country to the domains it censors. A rule matches by
// explicit names, by category, or both. Coverage is the fraction of the
// country's resolvers complying with this rule (§4.2 finds coverage far
// below 100% everywhere except China).
type censorRule struct {
	country  string
	names    []string
	cats     []domains.Category
	coverage float64
	// landing overrides the landing-page country (Estonian resolvers
	// answer with IPs assigned to Russian censorship).
	landing string
	gfw     bool
}

// gfwNames are the domains the Chinese injector reacts to. The set drives
// Figure 4 (Facebook/Twitter/YouTube) and the Ads/Misc censorship spikes
// of Table 5.
var gfwNames = []string{
	"facebook.com", "twitter.com", "youtube.com", "instagram.com",
	"pagead.syndication.example", "wikileaks.org",
}

var censorRules = buildCensorRules()

func buildCensorRules() []censorRule {
	rules := []censorRule{
		{country: "CN", names: gfwNames, coverage: 0.997, gfw: true},
		{country: "IR", names: []string{"facebook.com", "twitter.com", "youtube.com"}, coverage: 0.95},
		{country: "IR", cats: []domains.Category{domains.Adult, domains.Dating}, coverage: 0.90},
		{country: "ID", names: []string{"adultfinder.com"}, coverage: 0.916},
		{country: "ID", names: []string{"youporn.com"}, coverage: 0.60},
		{country: "ID", names: []string{"xhamster.com"}, coverage: 0.287},
		{country: "ID", names: []string{"redtube.com"}, coverage: 0.45},
		{country: "ID", names: []string{"blogspot.com"}, coverage: 0.885},
		{country: "ID", names: []string{"rotten.com"}, coverage: 0.80},
		{country: "ID", cats: []domains.Category{domains.Gambling}, coverage: 0.30},
		{country: "ID", cats: []domains.Category{domains.Dating}, coverage: 0.60},
		{country: "TR", cats: []domains.Category{domains.Adult}, coverage: 0.90},
		{country: "TR", names: []string{"rotten.com", "wikileaks.org"}, coverage: 0.90},
		{country: "TR", cats: []domains.Category{domains.Filesharing}, coverage: 0.85},
		{country: "TR", cats: []domains.Category{domains.Gambling}, coverage: 0.70},
		{country: "TR", cats: []domains.Category{domains.Dating}, coverage: 0.50},
		{country: "MY", names: []string{"youporn.com"}, coverage: 0.55},
		{country: "MY", cats: []domains.Category{domains.Adult}, coverage: 0.35},
		{country: "MN", cats: []domains.Category{domains.Adult}, coverage: 0.789},
		{country: "GR", names: []string{"bet-at-home.com", "pokerstars.com"}, coverage: 0.839},
		{country: "BE", names: []string{"bet-at-home.com", "pokerstars.com"}, coverage: 0.786},
		{country: "IT", cats: []domains.Category{domains.Gambling, domains.Filesharing}, coverage: 0.693},
		{country: "RU", cats: []domains.Category{domains.Filesharing}, coverage: 0.50},
		{country: "RU", cats: []domains.Category{domains.Gambling}, coverage: 0.40},
		{country: "RU", names: []string{"wikileaks.org"}, coverage: 0.60},
		{country: "EE", cats: []domains.Category{domains.Gambling}, coverage: 0.569, landing: "RU"},
	}
	// Every remaining censor country blocks adult and gambling content
	// with country-specific coverage, giving the >3M "other countries"
	// censorship population of §4.2.
	covered := map[string]bool{}
	for _, r := range rules {
		covered[r.country] = true
	}
	for i, cc := range CensorCountries {
		if covered[cc] {
			continue
		}
		cov := 0.30 + 0.45*prand.UnitOf(0xCE4504, uint64(i))
		rules = append(rules, censorRule{
			country:  cc,
			cats:     []domains.Category{domains.Adult, domains.Gambling},
			coverage: cov,
		})
	}
	return rules
}

func (r *censorRule) matches(name string, cat domains.Category) bool {
	for _, n := range r.names {
		if n == name {
			return true
		}
	}
	for _, c := range r.cats {
		if c == cat {
			return true
		}
	}
	return false
}

// CensorDecision returns how the resolver with the given profile censors a
// lookup of name, if at all. The compliance draw is per (resolver, rule),
// so one resolver either censors a whole rule's domain set or none of it,
// as ISP-level filtering does.
func (w *World) CensorDecision(p *Profile, name string) (CensorMode, uint32) {
	cn := dnswire.CanonicalName(name)
	var cat domains.Category
	if d, ok := domains.ByName(cn); ok {
		cat = d.Category
	}
	for ri := range censorRules {
		r := &censorRules[ri]
		if r.country != p.Country || !r.matches(cn, cat) {
			continue
		}
		if prand.UnitOf(p.Identity, facetCensor, uint64(ri)) >= r.coverage {
			continue
		}
		if r.gfw {
			return CensorGFW, w.gfwRandomAddr(p.Identity, cn)
		}
		landingCountry := r.country
		if r.landing != "" {
			landingCountry = r.landing
		}
		variant := int(prand.Hash(p.Identity, facetCensor, 0xBEEF) % 64)
		return CensorLanding, w.CensorPageAddr(landingCountry, variant)
	}
	return CensorNone, 0
}

// GFWMatches reports whether the injector reacts to a name, independent of
// any resolver (injection triggers even for probes to non-resolver hosts
// in Chinese address space, §4.2).
func GFWMatches(name string) bool {
	cn := dnswire.CanonicalName(name)
	for _, n := range gfwNames {
		if n == cn {
			return true
		}
	}
	return false
}

// gfwMatchesWire is GFWMatches over a wire-view name (raw bytes, original
// case, no trailing dot — the form unpackName and View.QName share), kept
// alloc-free for the transport fast path. Equivalent because gfwNames are
// canonical and CanonicalName only lowercases and strips a trailing dot.
//
//lint:hotpath per-probe CN injector filter
func gfwMatchesWire(name []byte) bool {
	for _, n := range gfwNames {
		if len(name) == len(n) && asciiEqualFold(name, n) {
			return true
		}
	}
	return false
}

// asciiEqualFold compares equal-length names ASCII case-insensitively.
//
//lint:hotpath per-probe CN injector filter
func asciiEqualFold(b []byte, s string) bool {
	for i := 0; i < len(s); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// gfwRandomAddr synthesizes the injector's bogus answer, stable per
// (resolver, domain). The documented poison pool mixes dark addresses
// with real-but-unrelated hosts, so a substantial share of injected
// answers points at machines that serve *something* (typically an error
// page or an unrelated website) — which is why the paper still obtained
// HTTP payload for most tuples and why the Alexa column of Table 5 is
// heavy on HTTP errors.
func (w *World) gfwRandomAddr(id uint64, cn string) uint32 {
	h := prand.Hash(id, 0x6F3, hashString(cn))
	switch v := prand.Float64(h); {
	case v < 0.25:
		return w.infra.addrOf(RoleErrorPage, prand.IntN(prand.Mix64(h), nErrorPage))
	case v < 0.40:
		return w.infra.addrOf(RoleSiteHost, prand.IntN(prand.Mix64(h), nSiteHost))
	default:
		return w.Mask(uint32(h))
	}
}
