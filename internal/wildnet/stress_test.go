package wildnet

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
)

// TestUDPGatewayFanOutStress hammers one gateway from several concurrent
// clients, each with its own sender goroutine. It exists for `make
// race`: the gateway's serve loop spawns a goroutine per response, and
// this is the test that makes those paths actually race each other.
func TestUDPGatewayFanOutStress(t *testing.T) {
	t.Parallel()
	w := testWorld(t, 14)
	// Aim at real resolvers so responses actually flow.
	var targets []uint32
	for u := uint32(1); u < 1<<14 && len(targets) < 64; u++ {
		if w.ResolverAt(u, At(0)) && w.VisibleFrom(u, VantagePrimary, At(0)) {
			targets = append(targets, u)
		}
	}
	if len(targets) == 0 {
		t.Fatal("world has no visible resolvers")
	}

	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	const clients = 4
	const queriesPerClient = 128
	var responses atomic.Int64

	var transports []*UDPTransport
	for c := 0; c < clients; c++ {
		tr, err := DialGateway(gw.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
			if _, err := dnswire.Unpack(payload); err == nil {
				responses.Add(1)
			}
		})
		transports = append(transports, tr)
	}

	var wg sync.WaitGroup
	for c, tr := range transports {
		wg.Add(1)
		go func(c int, tr *UDPTransport) {
			defer wg.Done()
			for i := 0; i < queriesPerClient; i++ {
				u := targets[(c*queriesPerClient+i)%len(targets)]
				q := dnswire.NewQuery(uint16(i), domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
				wire, err := q.PackBytes()
				if err != nil {
					t.Errorf("pack: %v", err)
					return
				}
				if err := tr.Send(context.Background(), w.Addr(u), 53, uint16(42000+c), wire); err != nil {
					t.Errorf("client %d send %d: %v", c, i, err)
					return
				}
			}
		}(c, tr)
	}
	wg.Wait()

	// Responses ride real loopback sockets; give them a moment, but not
	// a fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for responses.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if responses.Load() == 0 {
		t.Error("no responses survived the concurrent fan-out")
	}
}
