package wildnet

import (
	"fmt"
	"strconv"
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/geodb"
	"goingwild/internal/lfsr"
	"goingwild/internal/prand"
)

// This file models the authoritative side of the DNS hierarchy: the
// legitimate A records for every scan domain (including the geo-dependent
// answers of CDN-hosted domains that make prefiltering hard, §3.4), the
// ground-truth zone the measurement team operates, and reverse DNS.

// cdnRegions is the number of distinct answer regions a CDN serves.
const cdnRegions = 8

// RegionOf maps a country to its CDN answer region.
func RegionOf(country string) int {
	if i, ok := geodb.CountryIndex[country]; ok {
		return i % cdnRegions
	}
	return 0
}

// vantageCountry is where the measurement host (and its trusted
// resolvers) sit; the authors scanned from a German university network.
const vantageCountry = "DE"

// LegitAddrs returns the legitimate A-record set for a scan-list domain as
// observed from the given requester country, plus the response code. For
// CDN domains the answer differs per region; for nonexistent domains the
// rcode is NXDOMAIN with no addresses.
func (w *World) LegitAddrs(name string, requesterCountry string) ([]uint32, dnswire.RCode) {
	cn := dnswire.CanonicalName(name)
	if cn == domains.GroundTruth || strings.HasSuffix(cn, "."+domains.GroundTruth) {
		return []uint32{w.infra.addrOf(RoleSiteHost, 0)}, dnswire.RCodeNoError
	}
	if strings.HasSuffix(cn, "."+domains.ScanBase) || cn == domains.ScanBase {
		// Any name under the scan base resolves; the A record carries
		// the encoded target back (the zone is wildcarded).
		if target, err := dnswire.DecodeTargetQName(cn, domains.ScanBase); err == nil {
			return []uint32{w.Mask(lfsr.AddrToU32(target))}, dnswire.RCodeNoError
		}
		return []uint32{w.infra.addrOf(RoleSiteHost, 1)}, dnswire.RCodeNoError
	}
	if ip, ok := w.rdnsRoundTrip(cn); ok {
		return []uint32{ip}, dnswire.RCodeNoError
	}
	d, ok := domains.ByName(cn)
	if !ok {
		// Unlisted names (sub-resolutions from redirects) hash onto a
		// stable site-host slot.
		h := prand.Hash(w.cfg.Seed, facetInfra, hashString(cn))
		return []uint32{w.infra.addrOf(RoleSiteHost, 2+prand.IntN(h, nSiteHost-2))}, dnswire.RCodeNoError
	}
	switch d.Kind {
	case domains.KindNonexistent:
		return nil, dnswire.RCodeNXDomain
	case domains.KindMailHost:
		return w.mailLegitAddrs(cn), dnswire.RCodeNoError
	case domains.KindCDN:
		return w.cdnAddrs(cn, RegionOf(requesterCountry)), dnswire.RCodeNoError
	default:
		return w.ordinaryAddrs(cn), dnswire.RCodeNoError
	}
}

// TrustedResolve performs the lookup the measurement team's own trusted
// recursive resolvers would, i.e. from the vantage region (§3.4 rule i).
func (w *World) TrustedResolve(name string) ([]uint32, dnswire.RCode) {
	return w.LegitAddrs(name, vantageCountry)
}

// ordinaryAddrs returns the fixed 1–3 hosting addresses of a non-CDN
// domain, all within one owner network.
func (w *World) ordinaryAddrs(cn string) []uint32 {
	h := prand.Hash(w.cfg.Seed, facetInfra, hashString(cn), 1)
	n := 1 + prand.IntN(h, 3)
	base := 8 + prand.IntN(prand.Mix64(h), nSiteHost-16)
	out := make([]uint32, n)
	for i := range out {
		out[i] = w.infra.addrOf(RoleSiteHost, base+i)
	}
	return out
}

// cdnAddrs returns a CDN domain's deployment addresses for one region.
// A small share of slots point at currently-dead content nodes, which is
// what leaves some tuples without HTTP payload (§4.2).
func (w *World) cdnAddrs(cn string, region int) []uint32 {
	h := prand.Hash(w.cfg.Seed, facetRegion, hashString(cn), uint64(region))
	n := 2 + prand.IntN(h, 3)
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		hi := prand.Hash(h, uint64(i))
		if prand.Float64(hi) < 0.003 {
			out = append(out, w.infra.addrOf(RoleDeadCDN, prand.IntN(hi, nDeadCDN)))
			continue
		}
		out = append(out, w.infra.addrOf(RoleCDNNode, prand.IntN(hi, nCDNNode)))
	}
	return out
}

// mailLegitAddrs returns the provider's real mail host addresses.
func (w *World) mailLegitAddrs(cn string) []uint32 {
	provider := mailProviderOf(cn)
	slot := provider*4 + mailProtoOf(cn)
	return []uint32{w.infra.addrOf(RoleMailLegit, slot)}
}

// mailProviderOf maps an MX-set hostname to its provider index (6
// providers: Aim, Gmail, Mail.me, Outlook, Yahoo, Yandex).
func mailProviderOf(cn string) int {
	switch {
	case strings.Contains(cn, "aim.com"):
		return 0
	case strings.Contains(cn, "gmail.com"):
		return 1
	case strings.Contains(cn, "mail.me.com"):
		return 2
	case strings.Contains(cn, "outlook.com"):
		return 3
	case strings.Contains(cn, "yahoo.com"):
		return 4
	default:
		return 5 // yandex
	}
}

// mailProtoOf maps a hostname to its protocol slot (imap/pop/smtp).
func mailProtoOf(cn string) int {
	switch {
	case strings.HasPrefix(cn, "imap"):
		return 0
	case strings.HasPrefix(cn, "pop"):
		return 1
	default:
		return 2
	}
}

// MailProto names the mail protocol a hostname stands for.
func MailProto(cn string) string {
	switch mailProtoOf(dnswire.CanonicalName(cn)) {
	case 0:
		return "imap"
	case 1:
		return "pop3"
	default:
		return "smtp"
	}
}

// RDNS returns the PTR target of an address, or "" when none exists.
// Infrastructure addresses carry role-appropriate names; about half the
// ordinary-domain site hosts publish a PTR equal to the domain they host,
// which is what prefilter rule (ii) keys on.
func (w *World) RDNS(u uint32) string {
	u = w.Mask(u)
	role, idx := w.infra.roleParam(u)
	switch role {
	case RoleNone:
		return w.geo.RDNSName(w.cfg.Seed, u)
	case RoleSiteHost:
		if d := w.siteHostDomain(idx); d != "" {
			if prand.UnitOf(w.cfg.Seed, facetInfra, 0x7D45, uint64(idx)) < 0.5 {
				return d
			}
			return fmt.Sprintf("web%d.hosting-%02d.example", idx, idx%7)
		}
		return fmt.Sprintf("web%d.hosting-%02d.example", idx, idx%7)
	case RoleCDNNode, RoleDeadCDN:
		return fmt.Sprintf("a%d.deploy.static.cdn-global.example", idx)
	case RoleMailLegit:
		return fmt.Sprintf("mail%d.provider%d.example", idx%4, idx/4)
	case RoleAuthNS:
		return fmt.Sprintf("ns%d.dnsstudy.example.edu", idx)
	case RoleTrustedDNS:
		return fmt.Sprintf("resolver%d.dnsstudy.example.edu", idx)
	case RoleCensorPage:
		return "" // censorship landing pages publish no rDNS
	case RoleParking:
		return fmt.Sprintf("park%d.parking-pages.example", idx)
	case RoleErrorPage:
		return fmt.Sprintf("srv%d.shared-hosting.example", idx)
	case RoleLoginPortal:
		return fmt.Sprintf("portal%d.access.example", idx)
	default:
		return ""
	}
}

// siteHostDomain returns the ordinary scan domain hosted at a site-host
// slot, or "" when the slot hosts no scan-list domain. Slot assignment
// mirrors ordinaryAddrs.
func (w *World) siteHostDomain(idx int) string {
	for _, d := range domains.List {
		if d.Kind != domains.KindOrdinary {
			continue
		}
		h := prand.Hash(w.cfg.Seed, facetInfra, hashString(d.Name), 1)
		n := 1 + prand.IntN(h, 3)
		base := 8 + prand.IntN(prand.Mix64(h), nSiteHost-16)
		if idx >= base && idx < base+n {
			return d.Name
		}
	}
	return ""
}

// rdnsRoundTrip recognizes the A-lookup of an rDNS name and returns the
// address it refers to, closing the verification loop of prefilter rule
// (ii): only the true owner can make A(rdns) come back to the IP.
func (w *World) rdnsRoundTrip(cn string) (uint32, bool) {
	// Resolver-space names: "<tok>-a-b-c-d.<as>.example" or
	// "a-b-c-d.<tok>.<as>.example".
	if !strings.HasSuffix(cn, ".example") {
		return 0, false
	}
	first := cn
	if i := strings.IndexByte(cn, '.'); i > 0 {
		first = cn[:i]
	}
	parts := strings.Split(first, "-")
	if len(parts) < 4 {
		return 0, false
	}
	// The last four dash-separated fields are the octets.
	oct := parts[len(parts)-4:]
	var u uint32
	for _, s := range oct {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v > 255 {
			return 0, false
		}
		u = u<<8 | uint32(v)
	}
	u = w.Mask(u)
	// Verify this really is the address's rDNS name.
	if w.RDNS(u) == cn {
		return u, true
	}
	return 0, false
}

// PTRName builds the in-addr.arpa name for an address.
func PTRName(u uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", u&0xFF, u>>8&0xFF, u>>16&0xFF, u>>24)
}

// ParsePTRName extracts the address from an in-addr.arpa name.
func ParsePTRName(name string) (uint32, bool) {
	cn := dnswire.CanonicalName(name)
	if !strings.HasSuffix(cn, ".in-addr.arpa") {
		return 0, false
	}
	parts := strings.Split(strings.TrimSuffix(cn, ".in-addr.arpa"), ".")
	if len(parts) != 4 {
		return 0, false
	}
	var u uint32
	for i := 3; i >= 0; i-- {
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 0 || v > 255 {
			return 0, false
		}
		u = u<<8 | uint32(v)
	}
	return u, true
}

func hashString(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}
