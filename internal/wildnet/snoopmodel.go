package wildnet

import (
	"goingwild/internal/prand"
)

// This file models resolver cache state for the DNS cache snooping study
// (§2.6): non-recursive NS queries for 15 TLDs observe the remaining TTL
// of cached entries; entries re-added after expiry betray real client
// activity behind the resolver.

// SnoopTTLBase is the NS-record TTL the simulated TLD zones publish. Real
// TLD NS TTLs are 48h; the simulation uses 6h so several expiry cycles fit
// into the 36-hour monitoring window (documented in EXPERIMENTS.md).
const SnoopTTLBase = 6 * 3600

// snoopLongTTL is the TTL of the UtilDecreasing class, long enough that
// no expiry is observed within the window.
const snoopLongTTL = 48 * 3600

// SnoopAnswer is the result of one cache-snooping probe.
type SnoopAnswer struct {
	Responded bool
	// Cached is false when the resolver has no entry for the TLD at the
	// moment of the probe (answer section empty, authority referral).
	Cached bool
	// TTL is the remaining TTL of the cached NS entry.
	TTL uint32
	// Empty mirrors the 7.3% of resolvers that answer with empty
	// responses instead of NS records.
	Empty bool
}

// snoopState computes the cache view of resolver profile p for TLD index
// tldIdx at absolute second s. seq is the probe sequence number the
// prober has sent to this (resolver, TLD) pair so far, which a stateful
// host would know (it distinguishes the single-response-then-stop class).
func snoopState(p *Profile, tldIdx int, s int64, seq int) SnoopAnswer {
	id := prand.Hash(p.Identity, facetCacheSeed, uint64(tldIdx))
	phase := int64(prand.Hash(id, 1) % SnoopTTLBase)
	switch p.Util {
	case UtilEmptyNS:
		return SnoopAnswer{Responded: true, Empty: true}
	case UtilSingleStop:
		if seq > 0 {
			return SnoopAnswer{}
		}
		return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(prand.Hash(id, 2) % SnoopTTLBase)}
	case UtilStaticTTL:
		ttl := uint32(0)
		if prand.Hash(p.Identity, facetCacheSeed)%2 == 0 {
			ttl = SnoopTTLBase / 2
		}
		return SnoopAnswer{Responded: true, Cached: true, TTL: ttl}
	case UtilInUseFast:
		// ~80% of TLDs in active use; refresh within 5 seconds of
		// expiry, so the entry is effectively always cached.
		if prand.Float64(prand.Hash(id, 3)) > 0.80 {
			return coldEntry(id, s)
		}
		rem := SnoopTTLBase - (s+phase)%SnoopTTLBase
		return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(rem)}
	case UtilInUseSlow:
		// ~50% of TLDs used; after expiry the entry stays cold for a
		// client-dependent gap before a lookup re-adds it.
		if prand.Float64(prand.Hash(id, 3)) > 0.50 {
			return coldEntry(id, s)
		}
		gap := int64(60 + prand.Hash(id, 4)%(3*3600))
		cycle := int64(SnoopTTLBase) + gap
		pos := (s + phase) % cycle
		if pos >= int64(SnoopTTLBase) {
			return SnoopAnswer{Responded: true, Cached: false} // cold gap
		}
		return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(int64(SnoopTTLBase) - pos)}
	case UtilDecreasing:
		rem := snoopLongTTL - (s+phase)%snoopLongTTL
		return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(rem)}
	default: // UtilResetting
		// Proactive refresh or load-balanced pools: every probe sees a
		// near-maximum TTL.
		jitter := prand.Hash(id, uint64(s/3600)) % 600
		return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(SnoopTTLBase - int64(jitter))}
	}
}

// PlantedSnoopGap exposes the ground-truth re-caching gap (seconds) of a
// resolver for one snooped TLD — what the fine-grained popularity probe
// must recover. ok is false when the resolver's class or TLD usage gives
// no periodic gap (fast refreshers have an effective gap of ~0).
func (w *World) PlantedSnoopGap(u uint32, t Time, tldIdx int) (int64, bool) {
	p, ok := w.ProfileAt(w.Mask(u), t)
	if !ok || p.Util != UtilInUseSlow {
		return 0, false
	}
	id := prand.Hash(p.Identity, facetCacheSeed, uint64(tldIdx))
	if prand.Float64(prand.Hash(id, 3)) > 0.50 {
		return 0, false // TLD unused by this resolver's clients
	}
	return int64(60 + prand.Hash(id, 4)%(3*3600)), true
}

// coldEntry models a TLD the resolver's clients never look up: usually no
// cache entry at all, occasionally a leftover with a stale remaining TTL.
func coldEntry(id uint64, s int64) SnoopAnswer {
	if prand.Float64(prand.Hash(id, 5)) < 0.7 {
		return SnoopAnswer{Responded: true, Cached: false}
	}
	rem := snoopLongTTL - (s+int64(prand.Hash(id, 6)%snoopLongTTL))%snoopLongTTL
	return SnoopAnswer{Responded: true, Cached: true, TTL: uint32(rem)}
}
