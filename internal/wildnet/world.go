// Package wildnet is the virtual IPv4 Internet the measurement pipeline
// scans. It procedurally models the population the paper observed — tens
// of millions of open DNS resolvers with realistic geography, software and
// device mixes, churn dynamics, utilization, and (for a small share)
// deliberately manipulated resolution behavior — together with the
// authoritative name-server hierarchy, reverse DNS, web/mail content
// roles, and the Great-Firewall-style response injector.
//
// Every property of every host is a pure function of (world seed, address,
// lease epoch), so the world needs no per-host state: a scaled-down space
// of 2^order addresses behaves statistically like the paper's 2^32 one,
// and two runs with the same seed observe the identical Internet.
package wildnet

import (
	"fmt"
	"net/netip"
	"sync/atomic"

	"goingwild/internal/geodb"
	"goingwild/internal/lfsr"
	"goingwild/internal/metrics"
)

// Facet tags keep the per-host hash draws independent of each other.
const (
	facetSlot        = 0x01 // is this address an active resolver slot
	facetStability   = 0x02 // churn class
	facetRotate      = 0x03 // weekly lease rotation draw
	facetRCode       = 0x04 // NOERROR / REFUSED / SERVFAIL class
	facetProfile     = 0x05 // manipulation profile
	facetSoftware    = 0x06 // DNS server software
	facetDevice      = 0x07 // hardware device type
	facetUtilization = 0x08 // cache-snooping class
	facetMisSourced  = 0x09 // responds from a different source address
	facetCensor      = 0x0A // per-domain censorship compliance draw
	facetLoss        = 0x0B // packet loss draw
	facetServFail    = 0x0C // weekly SERVFAIL wobble
	facetSnoopHour   = 0x0D // hourly reachability during snooping
	facetRefresh     = 0x0E // client-driven cache refresh activity
	facetGFWDouble   = 0x0F // Chinese double-response resolvers
	facetTCPSvc      = 0x10 // which TCP services are exposed
	facetStaticIP    = 0x11 // target of static-answer resolvers
	facetVersionHide = 0x12 // administrator-hidden version strings
	facetCacheSeed   = 0x13 // cache-state phase for snooping
	facetInfra       = 0x14 // infrastructure address draws
	facetRegion      = 0x15 // CDN region perturbation
	facetVerify      = 0x16 // secondary-vantage behavior draws

	// Fault-injection facets (faults.go). Keep fault draws on their own
	// tags so enabling a FaultConfig never perturbs the base world.
	facetFaultBurst   = 0x17 // loss-burst window gate
	facetFaultDrop    = 0x18 // fault-layer per-packet loss draw
	facetFaultLatency = 0x19 // per-response latency jitter
	facetFaultDup     = 0x1A // response duplication
	facetFaultGarble  = 0x1B // response byte corruption
	facetFaultRate    = 0x1C // rate-limiter admission draw
	facetFaultRateCls = 0x1D // is this resolver a rate limiter
	facetFaultFlap    = 0x1E // mid-scan host outage windows
)

// Config parameterizes a world.
type Config struct {
	// Order is the address-space width in bits; the world spans
	// 2^Order addresses. The paper's Internet is order 32; tests use
	// 16–20 and benches 20–24.
	Order uint
	// Seed selects the world.
	Seed uint64
	// BaseDensity is the fraction of addresses hosting a responding
	// resolver at week 0. The paper observes ≈31.2M responders in the
	// 2^32 space ≈ 0.73%.
	BaseDensity float64
	// Loss is the probability that any single UDP packet is dropped
	// (applied independently to queries and responses).
	Loss float64
	// Faults layers additional deterministic network pathologies on top
	// of the base loss model: bursts, latency jitter, duplication,
	// garbling, rate-limiting resolvers, and host flaps. The zero value
	// disables the layer entirely (see faults.go and ChaosProfile).
	Faults FaultConfig
	// Metrics, when set, counts every injected fault (drops, bursts,
	// garbles, duplicates, rate-limiter verdicts, flap suppressions)
	// into the registry. A pure side channel: no draw ever reads a
	// counter, so attaching a registry cannot change the world.
	Metrics *metrics.Registry
}

// DefaultConfig returns the standard world used by tests and examples.
func DefaultConfig(order uint) Config {
	return Config{
		Order:       order,
		Seed:        0x60176A11D,
		BaseDensity: 31.2e6 / float64(uint64(1)<<32),
		Loss:        0.002,
	}
}

// World is one immutable simulated Internet.
type World struct {
	cfg   Config
	geo   *geodb.DB
	mask  uint32
	infra infraMap
	// stations holds the fixed-address rare-behavior resolvers (ad
	// redirectors, proxies, phishers, malware droppers).
	stations map[uint32]Manip
	// dnssec caches zone keys and RRset signatures.
	dnssec dnssecState
	// scale extrapolates simulated counts to paper scale.
	scale float64
	// faultsOn caches Faults.Enabled() so the transport hot path pays a
	// single bool load when the fault layer is disabled.
	faultsOn bool
	// fm counts injected faults; all-nil (no-op) without a registry.
	fm faultMetrics
	// bc memoizes the per-block facts of the transport fast path for the
	// most recently queried week (fastpath.go). Pure caching: every value
	// is a function of (seed, block, week) the slow path would compute.
	bc atomic.Pointer[rejectCache]
}

// NewWorld builds a world from cfg.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Order < 14 || cfg.Order > 32 {
		return nil, fmt.Errorf("wildnet: order %d out of range [14, 32]", cfg.Order)
	}
	if cfg.BaseDensity <= 0 || cfg.BaseDensity > 0.5 {
		return nil, fmt.Errorf("wildnet: base density %f out of range (0, 0.5]", cfg.BaseDensity)
	}
	geo, err := geodb.Build(cfg.Order, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mask := uint32(1)<<cfg.Order - 1
	if cfg.Order == 32 {
		mask = ^uint32(0)
	}
	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:      cfg,
		geo:      geo,
		mask:     mask,
		scale:    float64(uint64(1)<<32) / float64(uint64(1)<<cfg.Order),
		faultsOn: cfg.Faults.Enabled(),
		fm:       newFaultMetrics(cfg.Metrics),
	}
	w.infra = buildInfraMap(w)
	w.stations = w.buildStations()
	return w, nil
}

// MustNewWorld is NewWorld that panics on error.
func MustNewWorld(cfg Config) *World {
	w, err := NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Geo returns the world's geographic registry.
func (w *World) Geo() *geodb.DB { return w.geo }

// Order returns the address-space width.
func (w *World) Order() uint { return w.cfg.Order }

// SpaceSize returns the number of addresses in the world.
func (w *World) SpaceSize() uint64 { return uint64(1) << w.cfg.Order }

// ScaleFactor returns the multiplier that extrapolates simulated counts to
// the paper's 2^32 space.
func (w *World) ScaleFactor() float64 { return w.scale }

// Mask folds an arbitrary uint32 address into the world's space.
func (w *World) Mask(u uint32) uint32 { return u & w.mask }

// Addr converts a world-space uint32 to a netip.Addr.
func (w *World) Addr(u uint32) netip.Addr { return lfsr.U32ToAddr(w.Mask(u)) }

// Time is the simulation clock used throughout the study: a week index
// (0–55), a day within the week, an hour within the day, and a minute
// within the hour. The weekly scans of §2.2 advance Week; the churn
// study of §2.5 uses Day; cache snooping (§2.6) uses Hour; the
// fine-grained popularity probing (the §2.6 follow-up after Rajab et
// al.) uses Minute.
type Time struct {
	Week   int
	Day    int
	Hour   int
	Minute int
}

// AbsDay returns the absolute day index of t.
func (t Time) AbsDay() int { return t.Week*7 + t.Day }

// AbsHour returns the absolute hour index of t.
func (t Time) AbsHour() int { return t.AbsDay()*24 + t.Hour }

// AbsSeconds returns the absolute second index of t.
func (t Time) AbsSeconds() int64 { return int64(t.AbsHour())*3600 + int64(t.Minute)*60 }

// At is shorthand for a week-granularity instant.
func At(week int) Time { return Time{Week: week} }
