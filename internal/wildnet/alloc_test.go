package wildnet

import (
	"context"
	"net/netip"
	"testing"

	"goingwild/internal/dnswire"
)

// TestSendZeroFaultConfigAllocs pins the fault layer's promise: with a
// zero FaultConfig the per-packet gate is one cached bool, so the
// transport's silent path — parse, dispatch, no responder — stays at
// its pre-fault-layer budget of exactly one allocation per probe (the
// qname string unpackName builds while parsing the query; pre-existing,
// not the fault layer's). A regression to two means every probe of an
// order-24 sweep pays garbage for a feature that is switched off.
func TestSendZeroFaultConfigAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	w := testWorld(t, 16)
	if w.faultsOn {
		t.Fatal("default config must leave the fault layer off")
	}
	tr := NewMemTransport(w, VantagePrimary)
	defer tr.Close()
	if tr.attempts != nil {
		t.Fatal("zero FaultConfig must not arm the attempt counter")
	}
	responded := false
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) { responded = true })

	q := dnswire.NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
	payload, err := q.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Find a silent address: no resolver, no infrastructure role, no
	// injector. That probe takes the full hot path (parse + dispatch)
	// and exits without building a response message.
	var silent netip.Addr
	for u := uint32(1); u < 1<<16; u++ {
		responded = false
		addr := w.Addr(u)
		if err := tr.Send(ctx, addr, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
		if !responded {
			silent = addr
			break
		}
	}
	if !silent.IsValid() {
		t.Fatal("no silent address in the first 64Ki targets")
	}

	// Warm the pools, then demand a zero steady state.
	for i := 0; i < 8; i++ {
		if err := tr.Send(ctx, silent, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := tr.Send(ctx, silent, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 1 {
		t.Fatalf("zero-fault Send allocates %.1f per probe, want exactly 1 (the parsed qname)", allocs)
	}
}
