package wildnet

import (
	"context"
	"net/netip"
	"testing"

	"goingwild/internal/dnswire"
)

// TestSendZeroFaultConfigAllocs pins the transport's silent-path
// budgets. With a zero FaultConfig, a probe toward a fast-rejected
// address (the silent majority of any sweep) must cost zero heap
// allocations — the reject predicate runs before the hash, the loss
// draw, and the parse. A probe into empty Chinese space (which the
// predicate cannot reject outright, because the injector might answer)
// is decided by the alloc-free question peek and must also cost zero
// allocations for a non-GFW name. A regression on either path means
// every probe of an order-24 sweep pays garbage.
func TestSendZeroFaultConfigAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	w := testWorld(t, 16)
	if w.faultsOn {
		t.Fatal("default config must leave the fault layer off")
	}
	tr := NewMemTransport(w, VantagePrimary)
	defer tr.Close()
	if tr.attempts != nil {
		t.Fatal("zero FaultConfig must not arm the attempt counter")
	}
	responded := false
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) { responded = true })

	q := dnswire.NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
	payload, err := q.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	now := tr.Time()

	// Find one fast-rejected address and one silent slow-path address
	// (not rejectable, yet unresponsive: Chinese space with a non-GFW
	// query name ends the full pipeline without a response).
	var rejected, slowSilent netip.Addr
	for u := uint32(1); u < 1<<16; u++ {
		if rejected.IsValid() && slowSilent.IsValid() {
			break
		}
		if w.sweepReject(u, VantagePrimary, now) {
			if !rejected.IsValid() {
				rejected = w.Addr(u)
			}
			continue
		}
		responded = false
		if err := tr.Send(ctx, w.Addr(u), 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
		if !responded && !slowSilent.IsValid() {
			slowSilent = w.Addr(u)
		}
	}
	if !rejected.IsValid() || !slowSilent.IsValid() {
		t.Fatalf("missing probe classes in the first 64Ki targets (rejected=%v slow=%v)", rejected, slowSilent)
	}

	// Warm the pools, then demand the steady-state budgets.
	for i := 0; i < 8; i++ {
		if err := tr.Send(ctx, slowSilent, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := tr.Send(ctx, rejected, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fast-rejected Send allocates %.1f per probe, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(500, func() {
		if err := tr.Send(ctx, slowSilent, 53, 40000, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("zero-fault CN-silent Send allocates %.1f per probe, want 0", allocs)
	}
}
