package wildnet

import (
	"net/netip"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
)

// findResolver locates an address with the wanted property.
func findResolver(t *testing.T, w *World, tt Time, want func(Profile) bool) (uint32, Profile) {
	t.Helper()
	for u := uint32(0); u < uint32(w.SpaceSize()); u++ {
		p, ok := w.ProfileAt(u, tt)
		if ok && want(p) {
			return u, p
		}
	}
	t.Fatal("no resolver with wanted profile found")
	return 0, Profile{}
}

func query(name string, typ dnswire.Type, class dnswire.Class) *dnswire.Message {
	return dnswire.NewQuery(4242, name, typ, class)
}

func TestHonestResolverAnswersGT(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && !p.MisSourced
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query(domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN), At(0))
	if len(resps) != 1 {
		t.Fatalf("got %d responses, want 1", len(resps))
	}
	m := resps[0].Msg
	if m.Header.RCode != dnswire.RCodeNoError || len(m.Answers) == 0 {
		t.Fatalf("GT answer = %v", m)
	}
	want, _ := w.TrustedResolve(domains.GroundTruth)
	got := lfsr.AddrToU32(m.Answers[0].Data.(dnswire.A).Addr)
	if got != want[0] {
		t.Errorf("GT A = %d, want %d", got, want[0])
	}
}

func TestRefusedAndServfailClasses(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool { return p.RCode == RCRefused })
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("example.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	if len(resps) != 1 || resps[0].Msg.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("refused resolver answered %v", resps)
	}
	u2, _ := findResolver(t, w, At(0), func(p Profile) bool { return p.RCode == RCServFail })
	resps = w.HandleDNS(VantagePrimary, 4000, u2, query("example.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	if len(resps) != 1 || resps[0].Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("servfail resolver answered %v", resps)
	}
}

func TestChaosVersionResponses(t *testing.T) {
	w := testWorld(t, 16)
	u, p := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Chaos == ChaosVersioned
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("version.bind", dnswire.TypeTXT, dnswire.ClassCH), At(0))
	if len(resps) != 1 {
		t.Fatalf("got %d responses", len(resps))
	}
	txt, ok := resps[0].Msg.Answers[0].Data.(dnswire.TXT)
	if !ok || txt.Joined() == "" {
		t.Fatalf("CHAOS answer = %v", resps[0].Msg)
	}
	_ = p
	// Hidden-string class must not leak a real version.
	u2, p2 := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Chaos == ChaosHidden
	})
	resps = w.HandleDNS(VantagePrimary, 4000, u2, query("version.bind", dnswire.TypeTXT, dnswire.ClassCH), At(0))
	txt = resps[0].Msg.Answers[0].Data.(dnswire.TXT)
	if txt.Joined() == "" {
		t.Error("hidden class returned empty string")
	}
	_ = p2
	// Error class returns REFUSED or SERVFAIL.
	u3, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Chaos == ChaosError
	})
	resps = w.HandleDNS(VantagePrimary, 4000, u3, query("version.bind", dnswire.TypeTXT, dnswire.ClassCH), At(0))
	rc := resps[0].Msg.Header.RCode
	if rc != dnswire.RCodeRefused && rc != dnswire.RCodeServFail {
		t.Errorf("CHAOS error class returned %v", rc)
	}
}

func TestStaticIPResolverConsistent(t *testing.T) {
	w := testWorld(t, 19)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipStaticIP
	})
	var first netip.Addr
	for i, name := range []string{"google.com", "paypal.com", domains.GroundTruth} {
		resps := w.HandleDNS(VantagePrimary, 4000, u, query(name, dnswire.TypeA, dnswire.ClassIN), At(0))
		if len(resps) != 1 || len(resps[0].Msg.Answers) != 1 {
			t.Fatalf("static resolver gave %v", resps)
		}
		a := resps[0].Msg.Answers[0].Data.(dnswire.A).Addr
		if i == 0 {
			first = a
		} else if a != first {
			t.Errorf("static resolver returned %v then %v", first, a)
		}
	}
}

func TestSelfIPResolver(t *testing.T) {
	w := testWorld(t, 19)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipSelfIP
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("chase.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	if got != u {
		t.Errorf("self-IP resolver returned %d, want %d", got, u)
	}
}

func TestNXMonetizerRedirectsOnlyNX(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipNXMonetize && p.Country == "US"
	})
	// NX domain: must return an address instead of NXDOMAIN.
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("ghoogle.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	if resps[0].Msg.Header.RCode != dnswire.RCodeNoError || len(resps[0].Msg.Answers) == 0 {
		t.Errorf("monetizer did not monetize NX: %v", resps[0].Msg)
	}
	// Existing non-malware domain: honest answer.
	resps = w.HandleDNS(VantagePrimary, 4000, u, query("chase.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	want, _ := w.LegitAddrs("chase.com", "US")
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	found := false
	for _, a := range want {
		if a == got {
			found = true
		}
	}
	if !found {
		t.Errorf("monetizer mangled existing domain: got %d, want one of %v", got, want)
	}
}

func TestHonestNXDomainIsNXOrEmpty(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && p.Country == "US"
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("amason.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	m := resps[0].Msg
	if m.Header.RCode == dnswire.RCodeNXDomain {
		return
	}
	if m.Header.RCode == dnswire.RCodeNoError && len(m.Answers) == 0 {
		return
	}
	t.Errorf("honest resolver returned %v for NX domain", m)
}

func TestChineseGFWInjection(t *testing.T) {
	w := testWorld(t, 18)
	u, p := findResolver(t, w, At(50), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && p.Country == "CN" && !p.GFWDouble
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("facebook.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	if len(resps) != 1 {
		t.Fatalf("CN resolver sent %d responses, want 1 (poisoned)", len(resps))
	}
	poisoned := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	legit, _ := w.LegitAddrs("facebook.com", "CN")
	for _, a := range legit {
		if a == poisoned {
			t.Error("GFW answer matches legitimate address")
		}
	}
	_ = p
	// Double-response resolvers race the legitimate answer.
	u2, _ := findResolver(t, w, At(50), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && p.Country == "CN" && p.GFWDouble
	})
	resps = w.HandleDNS(VantagePrimary, 4000, u2, query("twitter.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	if len(resps) != 2 {
		t.Fatalf("double-response resolver sent %d responses", len(resps))
	}
	if resps[0].DelayMS >= resps[1].DelayMS {
		t.Error("injected response does not arrive first")
	}
	// Non-GFW domains resolve normally from CN.
	resps = w.HandleDNS(VantagePrimary, 4000, u, query("chase.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	if len(resps) != 1 || len(resps[0].Msg.Answers) == 0 {
		t.Errorf("CN resolver broke non-censored domain: %v", resps)
	}
}

func TestGFWInjectionWithoutResolver(t *testing.T) {
	w := testWorld(t, 18)
	// Find a Chinese address hosting no resolver.
	var u uint32
	found := false
	for v := uint32(0); v < 1<<18; v++ {
		if w.geo.LookupU32(v).Country == "CN" && !w.ResolverAt(v, At(50)) && w.infra.roleOf(v) == RoleNone {
			u, found = v, true
			break
		}
	}
	if !found {
		t.Skip("no empty Chinese address at this order")
	}
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("youtube.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	if len(resps) != 1 || len(resps[0].Msg.Answers) == 0 {
		t.Errorf("injector silent for non-resolver Chinese address: %v", resps)
	}
	resps = w.HandleDNS(VantagePrimary, 4000, u, query("chase.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	if len(resps) != 0 {
		t.Errorf("non-GFW domain triggered response from empty address: %v", resps)
	}
}

func TestCensorshipLandingPages(t *testing.T) {
	w := testWorld(t, 18)
	u, _ := findResolver(t, w, At(50), func(p Profile) bool {
		if p.RCode != RCNoError || p.Manip != ManipHonest || p.Country != "ID" {
			return false
		}
		mode, _ := w.CensorDecision(&p, "adultfinder.com")
		return mode == CensorLanding
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("adultfinder.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	role, slot := w.RoleOf(got)
	if role != RoleCensorPage {
		t.Fatalf("censored answer role = %v", role)
	}
	if CensorPageCountry(slot) != "ID" {
		t.Errorf("landing page country = %s, want ID", CensorPageCountry(slot))
	}
}

func TestEstonianResolversUseRussianLanding(t *testing.T) {
	w := testWorld(t, 21)
	u, _ := findResolver(t, w, At(50), func(p Profile) bool {
		if p.RCode != RCNoError || p.Manip != ManipHonest || p.Country != "EE" {
			return false
		}
		mode, _ := w.CensorDecision(&p, "bet-at-home.com")
		return mode == CensorLanding
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("bet-at-home.com", dnswire.TypeA, dnswire.ClassIN), At(50))
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	_, slot := w.RoleOf(got)
	if CensorPageCountry(slot) != "RU" {
		t.Errorf("Estonian landing country = %s, want RU (§6: Russian censorship)", CensorPageCountry(slot))
	}
}

func TestPTRLookups(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest
	})
	// Find an address with rDNS.
	var target uint32
	for v := uint32(100); v < 1<<16; v++ {
		if w.RDNS(v) != "" {
			target = v
			break
		}
	}
	resps := w.HandleDNS(VantagePrimary, 4000, u, query(PTRName(target), dnswire.TypePTR, dnswire.ClassIN), At(0))
	if len(resps) != 1 {
		t.Fatalf("PTR got %d responses", len(resps))
	}
	ptr, ok := resps[0].Msg.Answers[0].Data.(dnswire.PTR)
	if !ok || ptr.Target != w.RDNS(target) {
		t.Errorf("PTR = %v, want %q", resps[0].Msg.Answers[0].Data, w.RDNS(target))
	}
}

func TestRDNSRoundTripRule(t *testing.T) {
	w := testWorld(t, 16)
	// For any resolver-space address with rDNS, the A lookup of that
	// name must return the address (prefilter rule ii).
	n := 0
	for v := uint32(0); v < 1<<16 && n < 50; v += 13 {
		if w.infra.roleOf(v) != RoleNone {
			continue
		}
		name := w.RDNS(v)
		if name == "" {
			continue
		}
		got, ok := w.rdnsRoundTrip(name)
		if !ok || got != v {
			t.Errorf("round trip of %q = %d/%v, want %d", name, got, ok, v)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no rDNS names found")
	}
}

func TestMailRedirectOnlyMX(t *testing.T) {
	w := testWorld(t, 19)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipMailRedir
	})
	resps := w.HandleDNS(VantagePrimary, 4000, u, query("imap.gmail.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	if role, _ := w.RoleOf(got); role != RoleMailSniff {
		t.Errorf("MX answer role = %v, want mail-sniff", role)
	}
	resps = w.HandleDNS(VantagePrimary, 4000, u, query("chase.com", dnswire.TypeA, dnswire.ClassIN), At(0))
	got = lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	if role, _ := w.RoleOf(got); role == RoleMailSniff {
		t.Error("non-MX domain redirected to mail sniffer")
	}
}

func TestSnoopSequenceStopsSingleResponders(t *testing.T) {
	w := testWorld(t, 18)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Util == UtilSingleStop
	})
	q0 := dnswire.NewQuery(0, "com", dnswire.TypeNS, dnswire.ClassIN)
	q0.Header.RD = false
	if resps := w.HandleDNS(VantagePrimary, 4000, u, q0, At(0)); len(resps) != 1 {
		t.Fatalf("first snoop probe got %d responses", len(resps))
	}
	q1 := dnswire.NewQuery(1, "com", dnswire.TypeNS, dnswire.ClassIN)
	q1.Header.RD = false
	if resps := w.HandleDNS(VantagePrimary, 4000, u, q1, At(0)); len(resps) != 0 {
		t.Errorf("single-stop resolver answered probe #2")
	}
}

func TestScanQNameEncodingAnswered(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest
	})
	name := dnswire.EncodeTargetQName("p1", w.Addr(u), domains.ScanBase)
	resps := w.HandleDNS(VantagePrimary, 4000, u, query(name, dnswire.TypeA, dnswire.ClassIN), At(0))
	if len(resps) != 1 || len(resps[0].Msg.Answers) == 0 {
		t.Fatalf("scan qname unanswered: %v", resps)
	}
	got := lfsr.AddrToU32(resps[0].Msg.Answers[0].Data.(dnswire.A).Addr)
	if got != u {
		t.Errorf("scan answer = %d, want encoded target %d", got, u)
	}
}
