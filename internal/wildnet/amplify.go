package wildnet

import (
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/prand"
)

// Amplification modeling: the paper repeatedly frames open resolvers as
// DDoS amplifiers (§1, §3, the authors' own USENIX Security 2014 study).
// ANY queries elicit responses whose size depends on how much the
// resolver is willing to stuff into a UDP answer; the survey in
// internal/ampli measures the resulting bandwidth amplification factors.

// AmpClass buckets resolvers by ANY-response behavior.
type AmpClass uint8

// Amplifier classes.
const (
	// AmpMinimal answers ANY with the A record only.
	AmpMinimal AmpClass = iota
	// AmpModerate adds NS and SOA records.
	AmpModerate
	// AmpLarge additionally returns bulky TXT records — the
	// monlist-grade amplifiers ripe for abuse.
	AmpLarge
	// AmpRefusesANY rejects ANY queries outright (the hardened
	// minority).
	AmpRefusesANY
)

// ampClassOf draws a resolver's amplifier class: roughly 10% large, 40%
// moderate, 45% minimal, 5% refusing — the long-tailed shape amplifier
// surveys report.
func ampClassOf(id uint64) AmpClass {
	v := prand.UnitOf(id, 0xA3B)
	switch {
	case v < 0.10:
		return AmpLarge
	case v < 0.50:
		return AmpModerate
	case v < 0.95:
		return AmpMinimal
	default:
		return AmpRefusesANY
	}
}

// AmpClassAt exposes the planted class for verification.
func (w *World) AmpClassAt(u uint32, t Time) (AmpClass, bool) {
	p, ok := w.ProfileAt(w.Mask(u), t)
	if !ok {
		return 0, false
	}
	return ampClassOf(p.Identity), true
}

// UDPPayloadLimit returns the largest UDP response the resolver at u
// sends for the given query (RFC 6891): without an EDNS OPT record in
// the query, everything truncates at the classic 512 octets; with one,
// EDNS-capable resolvers honor the advertised size up to their own
// buffer. Large amplifiers are exactly the EDNS-capable ones — which is
// why real amplification attacks always send EDNS queries.
func (w *World) UDPPayloadLimit(u uint32, q *dnswire.Message, t Time) int {
	advertised, hasEDNS := 0, false
	if q != nil {
		if size, ok := q.EDNSPayloadSize(); ok {
			advertised, hasEDNS = int(size), true
		}
	}
	if !hasEDNS || advertised <= dnswire.MaxUDPSize {
		return dnswire.MaxUDPSize
	}
	p, ok := w.ProfileAt(w.Mask(u), t)
	if !ok {
		return dnswire.MaxUDPSize
	}
	if ampClassOf(p.Identity) != AmpLarge {
		return dnswire.MaxUDPSize
	}
	if advertised > 4096 {
		return 4096
	}
	return advertised
}

// HandleDNSTCP answers a query over TCP: no size limit and — because
// injecting into an established TCP stream is much harder than spoofing
// UDP — no in-transit injection. Only resolvers offering TCP service
// answer (about two thirds of the population).
func (w *World) HandleDNSTCP(v Vantage, dst uint32, q *dnswire.Message, t Time) *dnswire.Message {
	dst = w.Mask(dst)
	p, ok := w.ProfileAt(dst, t)
	if !ok || !w.VisibleFrom(dst, v, t) {
		return nil
	}
	if prand.UnitOf(p.Identity, 0x7C9) > 0.67 {
		return nil // no DNS-over-TCP service
	}
	// TCP answers skip the injector: the CensorGFW mode degrades to the
	// resolver's own (possibly cache-poisoned) answer, which the
	// double-response minority has correct.
	resps := w.HandleDNS(v, 53, dst, q, t)
	if len(resps) == 0 {
		return nil
	}
	return resps[len(resps)-1].Msg
}

// answerANY builds the resolver's response to an ANY query.
func (w *World) answerANY(p *Profile, q *dnswire.Message, qname string) *dnswire.Message {
	switch ampClassOf(p.Identity) {
	case AmpRefusesANY:
		return dnswire.NewResponse(q, dnswire.RCodeRefused)
	case AmpMinimal:
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		addrs, rc := w.LegitAddrs(qname, p.Country)
		resp.Header.RCode = rc
		for _, a := range addrs {
			resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, answerTTL, dnswire.A{Addr: w.Addr(a)})
		}
		return resp
	case AmpModerate:
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		addrs, rc := w.LegitAddrs(qname, p.Country)
		resp.Header.RCode = rc
		name := q.Questions[0].Name
		for _, a := range addrs {
			resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.A{Addr: w.Addr(a)})
		}
		resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.NS{Host: "ns1." + qname})
		resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.NS{Host: "ns2." + qname})
		resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.SOA{
			MName: "ns1." + qname, RName: "hostmaster." + qname,
			Serial: 2015010100, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 3600,
		})
		// A quarter of the moderates hold more data than fits in 512
		// octets but do not speak EDNS: their UDP answers truncate and
		// clients must retry over TCP — the hardened non-amplifiers.
		if prand.UnitOf(p.Identity, 0xA3C) < 0.25 {
			blob := strings.Repeat("descriptive-policy-text ", 28)
			resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.TXT{Strings: []string{blob}})
		}
		return resp
	default: // AmpLarge
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		name := q.Questions[0].Name
		addrs, _ := w.LegitAddrs(qname, p.Country)
		for _, a := range addrs {
			resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.A{Addr: w.Addr(a)})
		}
		// Bulky TXT padding, the classic amplification payload.
		blob := strings.Repeat("v=spf1 include:_spf."+qname+" ", 8)
		for i := 0; i < 4; i++ {
			resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.TXT{Strings: []string{blob}})
		}
		resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.NS{Host: "ns1." + qname})
		resp.AddAnswer(name, dnswire.ClassIN, answerTTL, dnswire.SOA{
			MName: "ns1." + qname, RName: "hostmaster." + qname,
			Serial: 2015010100, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 3600,
		})
		return resp
	}
}
