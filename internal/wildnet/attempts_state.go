package wildnet

import "sort"

// AttemptRecord is one retransmission counter entry: the world has seen
// N transmissions of the payload hashing to PayloadHash toward Addr at
// the current simulated instant. Checkpoints persist these records so a
// resumed run's fault draws see the same attempt numbers the
// uninterrupted run would.
type AttemptRecord struct {
	Addr        uint32 `json:"addr"`
	PayloadHash uint64 `json:"ph"`
	N           uint64 `json:"n"`
}

// AttemptsState snapshots the retransmission counters in deterministic
// (Addr, PayloadHash) order. It returns nil when the fault layer is off
// (the counter does not exist) or when every counter is zero. Callers
// must quiesce senders first: the snapshot locks one stripe at a time,
// so it is only a consistent cut when nothing is transmitting.
func (m *MemTransport) AttemptsState() []AttemptRecord {
	if m.attempts == nil {
		return nil
	}
	var recs []AttemptRecord
	for i := range m.attempts.shards {
		s := &m.attempts.shards[i]
		s.mu.Lock()
		for k, n := range s.m {
			recs = append(recs, AttemptRecord{Addr: k.addr, PayloadHash: k.ph, N: n})
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Addr != recs[j].Addr {
			return recs[i].Addr < recs[j].Addr
		}
		return recs[i].PayloadHash < recs[j].PayloadHash
	})
	return recs
}

// RestoreAttempts resets the retransmission counters and replays recs
// into them, recreating the transport state a checkpoint captured. A
// no-op when the fault layer is off.
func (m *MemTransport) RestoreAttempts(recs []AttemptRecord) {
	if m.attempts == nil {
		return
	}
	m.attempts.reset()
	for _, r := range recs {
		s := &m.attempts.shards[r.PayloadHash%attemptShards]
		s.mu.Lock()
		s.m[attemptKey{addr: r.Addr, ph: r.PayloadHash}] = r.N
		s.mu.Unlock()
	}
}
