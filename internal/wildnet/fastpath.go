package wildnet

import (
	"goingwild/internal/dnswire"
	"goingwild/internal/geodb"
	"goingwild/internal/prand"
)

// The transport fast path: an Internet-wide sweep sends one probe to
// every address, but at realistic densities fewer than one in a hundred
// addresses hosts anything that answers. Walking the full handler
// pipeline (payload hash, loss draw, query parse, profile construction)
// for the silent majority is what capped the in-memory sweep below 2M
// probes/s. sweepReject decides, from a handful of seeded draws and one
// per-block cache line, that a destination can produce no response for
// ANY query — in which case the transport drops the probe on the floor
// without parsing it, exactly as the full pipeline would have.
//
// Soundness contract: sweepReject(u, v, t) == true must imply that
// handleDNS(v, srcPort, u, q, t, fc) returns no responses for every
// well-formed query q. It may return false conservatively (e.g. for
// Chinese address space, where the injector can answer even when no
// resolver lives at the address); a false only costs the slow path, never
// correctness. The fast path is only consulted when the fault layer is
// off: fault draws mutate the per-transport attempt counter and count
// injected faults, so a chaos-profile run always takes the full pipeline.

// blockInfo caches the per-network-block facts the reject predicate
// needs. Every field is a pure function of (world seed, block, week).
type blockInfo struct {
	// density is densitySlow for any address of the block at the cached
	// week (density inputs are all per-AS/per-week).
	density float64
	// dynamic mirrors the owning AS's DynamicPool flag.
	dynamic bool
	// cn marks Chinese address space, where the GFW injector may answer
	// for a nonexistent resolver.
	cn bool
	// blocksPrimary is true when the AS's FateBlocksScanner event has
	// taken effect: the primary vantage sees nothing from this block.
	blocksPrimary bool
	// hasStations is true when any rare-behavior station lives in the
	// block; the overwhelming majority of blocks have none, which lets
	// the predicate skip the station map lookup entirely.
	hasStations bool
}

// rejectCache is the week-stamped block table.
type rejectCache struct {
	week   int
	blocks []blockInfo
}

// blockCache returns the block table for week, rebuilding it when the
// cached week differs. Rebuilds are rare (one per simulated week touched)
// and cheap (one densitySlow per block); racing builders publish
// identical tables, so last-write-wins is safe.
func (w *World) blockCache(week int) *rejectCache {
	if c := w.bc.Load(); c != nil && c.week == week {
		return c
	}
	t := Time{Week: week}
	c := &rejectCache{week: week, blocks: make([]blockInfo, w.geo.NumBlocks())}
	for b := range c.blocks {
		base := w.geo.BlockBase(b)
		as := w.geo.ASOfU32(base)
		c.blocks[b] = blockInfo{
			density:       w.densitySlow(base, t),
			dynamic:       as.DynamicPool,
			cn:            as.Country == "CN",
			blocksPrimary: as.Fate == geodb.FateBlocksScanner && week >= as.FateWeek,
		}
	}
	for u := range w.stations {
		c.blocks[w.geo.BlockOf(u&w.mask)].hasStations = true
	}
	w.bc.Store(c)
	return c
}

// sweepReject reports whether a datagram to dst (already masked or not;
// the predicate masks) can be discarded without consulting the DNS
// handler: true only when handleDNS provably returns no response for any
// query from vantage v at time t. See the soundness contract above.
//
//lint:hotpath per-probe reject predicate; the sweep pays this for ~99% of targets
func (w *World) sweepReject(u uint32, v Vantage, t Time) bool {
	return w.sweepClassify(u, v, t, w.blockCache(t.Week)) == classReject
}

// sweepRejectCached is sweepReject with the week's block table already in
// hand, so a batch send loads the cache pointer once instead of per probe.
// c must be w.blockCache(t.Week).
//
//lint:hotpath per-probe reject predicate; the sweep pays this for ~99% of targets
func (w *World) sweepRejectCached(u uint32, v Vantage, t Time, c *rejectCache) bool {
	return w.sweepClassify(u, v, t, c) == classReject
}

// sweepClass is the transport fast-path verdict for one destination.
type sweepClass uint8

const (
	// classDeliver: something at the address may answer — run the full
	// pipeline.
	classDeliver sweepClass = iota
	// classReject: provably silent for every query; drop the probe.
	classReject
	// classCNOnly: empty Chinese address space. Silent for every query
	// except a GFW-listed A question, which the injector answers — the
	// transport decides with an alloc-free peek at the question.
	classCNOnly
)

// sweepClassify is the fast-path decision, factored so batch sends load
// the week's block table once. c must be w.blockCache(t.Week). See the
// soundness contract above; classCNOnly additionally promises that the
// only possible answerer is the injector.
//
//lint:hotpath per-probe reject predicate; the sweep pays this for ~99% of targets
func (w *World) sweepClassify(u uint32, v Vantage, t Time, c *rejectCache) sweepClass {
	u &= w.mask
	// Infrastructure space: only the authoritative and trusted-DNS
	// ranges answer DNS; every other role is silent on port 53.
	switch w.infra.roleOf(u) {
	case RoleNone:
		// ordinary address space — fall through to the resolver draw
	case RoleAuthNS, RoleTrustedDNS:
		return classDeliver
	default:
		return classReject
	}
	bi := &c.blocks[w.geo.BlockOf(u)]
	// Networks that black-hole the primary vantage answer nothing there,
	// stations included (handleDNS checks visibility before profiles).
	if bi.blocksPrimary && v == VantagePrimary {
		return classReject
	}
	// Rare-behavior stations are always-on resolvers.
	if bi.hasStations {
		if _, ok := w.stations[u]; ok {
			return classDeliver
		}
	}
	// The resolver slot draw, exactly as ResolverAt computes it.
	d := bi.density
	if d > 0 && prand.UnitOf(w.cfg.Seed, facetSlot, uint64(u), w.leaseEpochDyn(u, t, bi.dynamic)) < d {
		return classDeliver
	}
	// No resolver lives here. The injector still reacts to queries into
	// Chinese space, but only to GFW-listed names.
	if bi.cn {
		return classCNOnly
	}
	return classReject
}

// cnCouldAnswer reports whether a probe into empty Chinese address space
// (classCNOnly) could draw an injector response: a port-53, parseable A
// question for a GFW-listed name is the only stimulus handleDNS answers
// there. Unparseable headers conservatively return true — the full
// pipeline stays the authority on malformed input.
//
//lint:hotpath per-probe CN injector filter
func (m *MemTransport) cnCouldAnswer(dstPort uint16, payload []byte) bool {
	if dstPort != 53 {
		return false
	}
	v := dnswire.GetView()
	defer dnswire.PutView(v)
	if err := v.Reset(payload); err != nil {
		return true
	}
	if v.QDCount() == 0 || v.QType() != dnswire.TypeA {
		return false
	}
	return gfwMatchesWire(v.QName())
}
