package wildnet

import (
	"sort"

	"goingwild/internal/lfsr"
	"goingwild/internal/prand"
)

// Role classifies what a non-resolver infrastructure address serves. The
// manipulated DNS answers of §4 point into these ranges; the HTTP(S) and
// mail content simulator keys its pages off the role.
type Role uint8

// Infrastructure roles.
const (
	RoleNone         Role = iota
	RoleAuthNS            // authoritative name servers (incl. the GT zone)
	RoleCensorPage        // censorship landing pages (299 IPs, 34 countries)
	RoleParking           // domain parking / reseller landing pages
	RoleSearchPage        // search pages NX traffic is monetized with
	RoleAdInjectHTML      // ad replacement: banners injected into HTML (2 IPs)
	RoleAdInjectJS        // ad replacement: suspicious JavaScript (2 IPs)
	RoleAdBlockEmpty      // ad blocking: empty placeholders (7 IPs)
	RoleAdFakeSearch      // Google-lookalike search with extra banners (2 IPs)
	RoleProxyTLS          // transparent proxies with valid certificates (10 IPs)
	RoleProxyPlain        // transparent HTTP-only proxies (10 IPs)
	RolePhishPayPal       // PayPal phishing (16 IPs)
	RolePhishBankBR       // Italian-bank phishing host in Brazil (1 IP)
	RolePhishBankRU       // Italian-bank phishing host in Russia (1 IP)
	RolePhishOther        // other domain-specific phishing hosts (21 IPs)
	RoleMailSniff         // mail servers listening on redirected MX traffic
	RoleMalware           // fake Flash/Java update pages serving downloaders (30 IPs)
	RoleBlockPage         // parental-control / ISP / security blocking pages
	RoleErrorPage         // web servers answering 4xx/5xx or error pages
	RoleLoginPortal       // captive portals, hotel/university logins, webmail
	RoleSiteHost          // legitimate hosting of ordinary scan domains
	RoleCDNNode           // legitimate CDN deployment nodes
	RoleDeadCDN           // CDN nodes currently serving nothing (§4.2)
	RoleMailLegit         // the mail providers' real IMAP/POP3/SMTP hosts
	RoleTrustedDNS        // the measurement team's own recursive resolvers
)

// String returns a stable lowercase name for the role.
func (r Role) String() string {
	names := map[Role]string{
		RoleNone: "none", RoleAuthNS: "authns", RoleCensorPage: "censor",
		RoleParking: "parking", RoleSearchPage: "search",
		RoleAdInjectHTML: "ad-inject-html", RoleAdInjectJS: "ad-inject-js",
		RoleAdBlockEmpty: "ad-block", RoleAdFakeSearch: "ad-fake-search",
		RoleProxyTLS: "proxy-tls", RoleProxyPlain: "proxy-plain",
		RolePhishPayPal: "phish-paypal", RolePhishBankBR: "phish-bank-br",
		RolePhishBankRU: "phish-bank-ru", RolePhishOther: "phish-other",
		RoleMailSniff: "mail-sniff", RoleMalware: "malware",
		RoleBlockPage: "block-page", RoleErrorPage: "error-page",
		RoleLoginPortal: "login-portal", RoleSiteHost: "site-host",
		RoleCDNNode: "cdn-node", RoleDeadCDN: "dead-cdn",
		RoleMailLegit: "mail-legit", RoleTrustedDNS: "trusted-dns",
	}
	if s, ok := names[r]; ok {
		return s
	}
	return "unknown"
}

// CensorCountries are the 34 countries operating censorship landing pages
// (§4.2 identifies 299 landing IPs related to 34 countries).
var CensorCountries = []string{
	"CN", "IR", "ID", "TR", "MY", "MN", "GR", "BE", "IT", "RU",
	"EE", "SA", "AE", "PK", "VN", "TH", "EG", "DZ", "MA", "TN",
	"SY", "IQ", "JO", "KW", "BD", "LK", "KZ", "UA", "BG", "RO",
	"HU", "IN", "KR", "SG",
}

// censorSlotsPerCountry bounds each country's landing-page allocation.
const censorSlotsPerCountry = 15

// infraRange describes one carved-out block of infrastructure addresses.
type infraRange struct {
	role Role
	off  uint32 // offset of the range within the infra region
	size uint32
}

// infraMap lays out the infrastructure region at the top of the address
// space. Range sizes are fixed so role parameters are stable across
// address-space orders.
type infraMap struct {
	base   uint32 // first infrastructure address
	total  uint32
	ranges []infraRange // sorted by off
}

// Infrastructure range sizes.
const (
	nAuthNS      = 16
	nCensor      = 34 * censorSlotsPerCountry // 510 slots, ≈299 active
	nParking     = 64
	nSearch      = 16
	nAdInjHTML   = 2
	nAdInjJS     = 2
	nAdBlock     = 7
	nAdFake      = 2
	nProxyTLS    = 10
	nProxyPlain  = 10
	nPhishPayPal = 16
	nPhishOther  = 21
	nMailSniff   = 128
	nMalware     = 30
	nBlockPage   = 128
	nErrorPage   = 512
	nLoginPortal = 128
	nSiteHost    = 1024
	nCDNNode     = 1024
	nDeadCDN     = 64
	nMailLegit   = 32
	nTrustedDNS  = 4
)

func buildInfraMap(w *World) infraMap {
	sizes := []struct {
		role Role
		n    uint32
	}{
		{RoleAuthNS, nAuthNS},
		{RoleCensorPage, nCensor},
		{RoleParking, nParking},
		{RoleSearchPage, nSearch},
		{RoleAdInjectHTML, nAdInjHTML},
		{RoleAdInjectJS, nAdInjJS},
		{RoleAdBlockEmpty, nAdBlock},
		{RoleAdFakeSearch, nAdFake},
		{RoleProxyTLS, nProxyTLS},
		{RoleProxyPlain, nProxyPlain},
		{RolePhishPayPal, nPhishPayPal},
		{RolePhishBankBR, 1},
		{RolePhishBankRU, 1},
		{RolePhishOther, nPhishOther},
		{RoleMailSniff, nMailSniff},
		{RoleMalware, nMalware},
		{RoleBlockPage, nBlockPage},
		{RoleErrorPage, nErrorPage},
		{RoleLoginPortal, nLoginPortal},
		{RoleSiteHost, nSiteHost},
		{RoleCDNNode, nCDNNode},
		{RoleDeadCDN, nDeadCDN},
		{RoleMailLegit, nMailLegit},
		{RoleTrustedDNS, nTrustedDNS},
	}
	m := infraMap{}
	var off uint32
	for _, s := range sizes {
		m.ranges = append(m.ranges, infraRange{role: s.role, off: off, size: s.n})
		off += s.n
	}
	m.total = off
	space := uint32(w.SpaceSize() - 1)
	m.base = space - m.total + 1
	return m
}

// roleOf returns the role of an address, or RoleNone for ordinary space.
func (m *infraMap) roleOf(u uint32) Role {
	r, _ := m.roleParam(u)
	return r
}

// roleParam returns the role of an address together with its index within
// the role's range.
func (m *infraMap) roleParam(u uint32) (Role, int) {
	if u < m.base {
		return RoleNone, 0
	}
	off := u - m.base
	i := sort.Search(len(m.ranges), func(i int) bool {
		return m.ranges[i].off+m.ranges[i].size > off
	})
	if i >= len(m.ranges) {
		return RoleNone, 0
	}
	r := m.ranges[i]
	return r.role, int(off - r.off)
}

// addrOf returns the address of slot idx inside the role's range.
func (m *infraMap) addrOf(role Role, idx int) uint32 {
	for _, r := range m.ranges {
		if r.role == role {
			if uint32(idx) >= r.size {
				idx = int(r.size) - 1
			}
			return m.base + r.off + uint32(idx)
		}
	}
	return m.base
}

// rangeSize returns the slot count of a role's range.
func (m *infraMap) rangeSize(role Role) int {
	for _, r := range m.ranges {
		if r.role == role {
			return int(r.size)
		}
	}
	return 0
}

// RoleOf exposes the infrastructure role of an address.
func (w *World) RoleOf(u uint32) (Role, int) {
	return w.infra.roleParam(w.Mask(u))
}

// ASNOf returns the autonomous system number of any address, as the
// public registry data would report it. Resolver space follows the
// geographic registry; infrastructure roles get their own allocations —
// notably CDN nodes, which deliberately scatter across ~50 ASes so that
// prefilter rule (i) cannot whitelist them from the trusted resolution
// alone (§3.4: "Akamai is directly associated with at least 8 ASes, yet
// also distributes their content in several other ASes").
func (w *World) ASNOf(u uint32) uint32 {
	role, idx := w.RoleOf(u)
	switch role {
	case RoleNone:
		return w.geo.LookupU32(w.Mask(u)).AS.ASN
	case RoleCDNNode, RoleDeadCDN:
		return 7000 + uint32(idx%53)
	case RoleSiteHost:
		return 8000 + uint32(idx/8)
	case RoleCensorPage:
		return 8200 + uint32(idx/censorSlotsPerCountry)
	default:
		return 8400 + uint32(role)
	}
}

// InfraRange returns the first infrastructure address and the range size.
// Scans blacklist this region the way the paper's operators excluded
// their own measurement hosts.
func (w *World) InfraRange() (base uint32, size uint32) {
	return w.infra.base, w.infra.total
}

// ScanBlacklist returns the blacklist a well-behaved scan of this world
// uses: the world's own measurement infrastructure. (Reserved IANA
// ranges are meaningful only at order 32; the scaled-down spaces fold
// them away.)
func (w *World) ScanBlacklist() *lfsr.Blacklist {
	bl := lfsr.NewBlacklist()
	for u := w.infra.base; ; u++ {
		if err := bl.AddAddr(lfsr.U32ToAddr(u)); err != nil {
			break
		}
		if u == w.infra.base+w.infra.total-1 {
			break
		}
	}
	return bl
}

// RoleAddr returns the address of slot idx of a role's range.
func (w *World) RoleAddr(role Role, idx int) uint32 {
	return w.infra.addrOf(role, idx)
}

// RoleSize returns the number of slots a role's range holds.
func (w *World) RoleSize(role Role) int {
	return w.infra.rangeSize(role)
}

// CensorPageAddr returns the address of one of a country's censorship
// landing pages; variant spreads load across the country's slots. Returns
// 0 when the country operates no landing pages.
func (w *World) CensorPageAddr(country string, variant int) uint32 {
	ci := -1
	for i, c := range CensorCountries {
		if c == country {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0
	}
	// Each country activates 4–12 of its slots, totalling ≈299 IPs.
	active := 4 + prand.IntN(prand.Hash(w.cfg.Seed, facetInfra, uint64(ci)), 9)
	slot := ci*censorSlotsPerCountry + variant%active
	return w.infra.addrOf(RoleCensorPage, slot)
}

// CensorPageCountry returns the country operating the landing page at a
// RoleCensorPage slot.
func CensorPageCountry(slot int) string {
	ci := slot / censorSlotsPerCountry
	if ci < 0 || ci >= len(CensorCountries) {
		return ""
	}
	return CensorCountries[ci]
}

// ActiveCensorPages returns the number of activated landing-page IPs
// world-wide (the paper counts 299 across 34 countries).
func (w *World) ActiveCensorPages() int {
	total := 0
	for ci := range CensorCountries {
		total += 4 + prand.IntN(prand.Hash(w.cfg.Seed, facetInfra, uint64(ci)), 9)
	}
	return total
}
