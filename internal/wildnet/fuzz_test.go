package wildnet

import (
	"context"
	"net/netip"
	"sync"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/lfsr"
)

// The fuzz world is built once per process (fuzz workers are separate
// processes, so each pays the cost once). It runs the hostile chaos
// profile so fuzzed packets exercise the fault layer's drop, garble,
// duplicate, rate-limit, and flap paths in addition to the DNS handler.
var (
	fuzzWorldOnce sync.Once
	fuzzWorld     *World
	fuzzWorldErr  error
)

func hostileFuzzWorld() (*World, error) {
	fuzzWorldOnce.Do(func() {
		cfg := DefaultConfig(14)
		faults, err := ChaosProfile("hostile")
		if err != nil {
			fuzzWorldErr = err
			return
		}
		cfg.Faults = faults
		fuzzWorld, fuzzWorldErr = NewWorld(cfg)
	})
	return fuzzWorld, fuzzWorldErr
}

// FuzzHandleDNS feeds arbitrary datagrams through the in-memory
// transport — the same entry point every simulated scan uses — against a
// world with all fault classes armed. Nothing here may panic: malformed
// packets must vanish like they would on the wire, and every response
// that does come back must carry a sane tunnel source.
func FuzzHandleDNS(f *testing.F) {
	q := dnswire.NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
	wire, _ := q.PackBytes()
	f.Add(wire, uint32(1), uint16(53), uint16(40000), uint8(0))
	gt := dnswire.NewQuery(99, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	gtWire, _ := gt.PackBytes()
	f.Add(gtWire, uint32(12345), uint16(53), uint16(41000), uint8(3))
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3, 'f', 'o', 'o', 0, 0, 1, 0, 1},
		uint32(7), uint16(53), uint16(42000), uint8(1))
	f.Add([]byte{}, uint32(0), uint16(0), uint16(0), uint8(0))
	f.Add([]byte{1, 2, 3}, uint32(0xFFFFFFFF), uint16(5353), uint16(1), uint8(7))
	f.Fuzz(func(t *testing.T, payload []byte, target uint32, dstPort, srcPort uint16, week uint8) {
		w, err := hostileFuzzWorld()
		if err != nil {
			t.Skipf("fuzz world: %v", err)
		}
		tr := NewMemTransport(w, VantagePrimary)
		defer tr.Close()
		tr.SetTime(At(int(week % 8)))
		tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, resp []byte) {
			if !src.Is4() {
				t.Errorf("response from non-IPv4 source %v", src)
			}
			// Responses may be garbled by the fault layer; they must
			// still never panic the pooled view decoder.
			v := dnswire.GetView()
			defer dnswire.PutView(v)
			if err := v.Reset(resp); err == nil {
				_ = v.RCode()
				_ = v.QName()
				_ = v.HasAnswerA()
			}
		})
		dst := lfsr.U32ToAddr(target)
		if err := tr.Send(context.Background(), dst, dstPort, srcPort, payload); err != nil {
			t.Fatalf("Send: %v", err)
		}
	})
}
