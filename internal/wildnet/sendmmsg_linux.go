//go:build linux && (amd64 || arm64)

package wildnet

import (
	"sync/atomic"
	"syscall"
	"unsafe"
)

// sendmmsg(2) support for the UDP gateway transport: one syscall ships
// a whole probe batch. The syscall number is per-architecture
// (sendmmsg_linux_*.go) because the stdlib syscall package predates the
// call and golang.org/x/sys is out of bounds for this zero-dependency
// module.

// sendmmsgUnsupported latches after the kernel rejects the syscall
// (ENOSYS/EOPNOTSUPP/EPERM — seccomp sandboxes show up as the latter
// two); every later batch takes the serial path without retrying it.
var sendmmsgUnsupported atomic.Bool

// mmsghdr is struct mmsghdr from <sys/socket.h>: a msghdr plus the
// kernel-filled per-message byte count. Alignment matches the kernel's
// (msghdr ends on a pointer-aligned boundary; the trailing pad keeps
// the array stride a multiple of 8 on LP64).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// writeBatch ships frames with as few sendmmsg calls as the kernel
// allows, falling back to the serial writer when the syscall is
// unavailable. Partial progress is preserved across fallback: frames
// the kernel already accepted are not resent.
func (u *UDPTransport) writeBatch(frames [][]byte) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	if sendmmsgUnsupported.Load() {
		return u.writeBatchSerial(frames)
	}
	rc, err := u.conn.SyscallConn()
	if err != nil {
		return u.writeBatchSerial(frames)
	}

	var sa syscall.RawSockaddrInet4
	sa.Family = syscall.AF_INET
	port := uint16(u.gateway.Port)
	// sin_port is in network byte order regardless of host endianness.
	*(*[2]byte)(unsafe.Pointer(&sa.Port)) = [2]byte{byte(port >> 8), byte(port)}
	copy(sa.Addr[:], u.gateway.IP.To4())

	iovs := make([]syscall.Iovec, len(frames))
	hdrs := make([]mmsghdr, len(frames))
	for i, f := range frames {
		iovs[i].Base = &f[0]
		iovs[i].SetLen(len(f))
		hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&sa))
		hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(sa))
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1 // uint64 on both constrained arches
	}

	sent := 0
	var sysErr error
	// RawConn.Write re-invokes the callback when the socket becomes
	// writable again, which is exactly the EAGAIN retry we want.
	werr := rc.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent), 0, 0, 0)
			switch errno {
			case 0:
				sent += int(r1)
			case syscall.EINTR:
				// retry immediately
			case syscall.EAGAIN:
				return false // wait for writability, then re-enter
			case syscall.ENOSYS, syscall.EOPNOTSUPP, syscall.EPERM:
				sendmmsgUnsupported.Store(true)
				return true
			default:
				sysErr = errno
				return true
			}
		}
		return true
	})
	if werr != nil && sysErr == nil {
		sysErr = werr
	}
	if sendmmsgUnsupported.Load() && sent < len(frames) && sysErr == nil {
		n, err := u.writeBatchSerial(frames[sent:])
		return sent + n, err
	}
	return sent, sysErr
}
