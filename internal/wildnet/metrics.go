package wildnet

import "goingwild/internal/metrics"

// faultMetrics holds the fault layer's pre-resolved counter handles, one
// per injected pathology, so the chaos harness can assert exactly what a
// profile did to a run. Counting never feeds back into any draw — every
// fault fate stays a pure function of (seed, traffic) — and every
// counter is deterministic: the packets a scan offers the transport are
// schedule-independent, so the fates drawn for them are too. All fields
// are nil (no-op) when Config.Metrics is unset.
//
// faultFlapped itself is deliberately not instrumented: the ground-truth
// walk CountRespondingAt consults the same predicate, and counting there
// would mix bookkeeping reads into traffic totals. Flap suppressions are
// counted at the query-handling site instead.
type faultMetrics struct {
	dropQuery    *metrics.Counter // queries eaten by the fault loss draw
	dropResponse *metrics.Counter // responses eaten by the fault loss draw
	dropBurst    *metrics.Counter // subset of drops that fired inside a loss burst
	garbled      *metrics.Counter // responses corrupted in flight
	duplicated   *metrics.Counter // responses delivered twice
	rateRefused  *metrics.Counter // queries answered REFUSED by a rate limiter
	rateDropped  *metrics.Counter // queries silently eaten by a rate limiter
	flapped      *metrics.Counter // queries suppressed by a host flap outage
}

// newFaultMetrics resolves the handle set; a nil registry yields the
// all-nil (no-op) set.
func newFaultMetrics(r *metrics.Registry) faultMetrics {
	if r == nil {
		return faultMetrics{}
	}
	return faultMetrics{
		dropQuery:    r.Counter("wildnet.fault.drop.query"),
		dropResponse: r.Counter("wildnet.fault.drop.response"),
		dropBurst:    r.Counter("wildnet.fault.drop.burst"),
		garbled:      r.Counter("wildnet.fault.garbled"),
		duplicated:   r.Counter("wildnet.fault.duplicated"),
		rateRefused:  r.Counter("wildnet.fault.ratelimit.refused"),
		rateDropped:  r.Counter("wildnet.fault.ratelimit.dropped"),
		flapped:      r.Counter("wildnet.fault.flap.suppressed"),
	}
}
