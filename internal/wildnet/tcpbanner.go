package wildnet

import (
	"goingwild/internal/devices"
	"goingwild/internal/prand"
)

// ServiceBanner models a TCP connection to addr on one of the five
// fingerprinting protocols (§2.4). It returns the banner payload and
// whether the port accepted the connection at all. Only resolvers with an
// exposed device (26.3% of the population) serve anything.
func (w *World) ServiceBanner(u uint32, proto devices.Proto, t Time) (string, bool) {
	u = w.Mask(u)
	if w.infra.roleOf(u) != RoleNone {
		return "", false // infrastructure fingerprinting is out of scope
	}
	p, ok := w.ProfileAt(u, t)
	if !ok || p.DeviceIdx < 0 {
		return "", false
	}
	m := devices.Catalog[p.DeviceIdx]
	banner, served := m.Banners[proto]
	if !served {
		return "", false
	}
	// Individual ports flap: a small share of connections fail even on
	// served protocols.
	if prand.UnitOf(p.Identity, facetTCPSvc, uint64(proto)) < 0.05 {
		return "", false
	}
	return banner, true
}

// DeviceAt exposes the device model behind a resolver, or nil: this is
// the planted ground truth the fingerprinting experiment must recover.
func (w *World) DeviceAt(u uint32, t Time) *devices.Model {
	p, ok := w.ProfileAt(w.Mask(u), t)
	if !ok || p.DeviceIdx < 0 {
		return nil
	}
	return &devices.Catalog[p.DeviceIdx]
}
