//go:build linux && amd64

package wildnet

// sysSendmmsg is __NR_sendmmsg on x86-64 (arch/x86/entry/syscalls/
// syscall_64.tbl); the stdlib syscall package has no constant for it.
const sysSendmmsg = 307
