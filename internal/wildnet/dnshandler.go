package wildnet

import (
	"net/netip"
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/prand"
	"goingwild/internal/software"
)

// QueryResponse is one DNS response emitted by the world. A single query
// can yield zero, one, or two responses (the Chinese injector races the
// legitimate answer, §4.2).
type QueryResponse struct {
	// Src is the address the response claims to come from.
	Src uint32
	// ToPort is the scanner-side port the response is delivered to;
	// usually the query's source port, but some resolvers rewrite it.
	ToPort uint16
	// DelayMS orders responses in time.
	DelayMS int
	Msg     *dnswire.Message
}

// answerTTL is the TTL planted on synthesized A answers.
const answerTTL = 300

// pPortScramble is the share of resolvers that return responses to a
// wrong destination port (§3.3 encodes 9 identifier bits redundantly via
// 0x20 precisely because of them).
const pPortScramble = 0.01

// lanBase is 192.168.1.0: captive-portal resolvers answer with LAN
// addresses that are unreachable from the measurement vantage (§4.2: up
// to 65.1% of no-payload tuples are LAN addresses).
const lanBase = uint32(192)<<24 | uint32(168)<<16 | uint32(1)<<8

// IsLANAddr reports whether a returned address is RFC1918 space, which the
// data-acquisition stage cannot reach.
func IsLANAddr(u uint32) bool {
	switch {
	case u>>24 == 10:
		return true
	case u>>20 == (172<<4 | 1): // 172.16/12
		return true
	case u>>16 == (192<<8 | 168):
		return true
	default:
		return false
	}
}

// HandleDNS processes one DNS query sent from a scan vantage to dst and
// returns the wire responses. srcPort is the scanner-side UDP source port
// (echoed into ToPort unless the resolver scrambles it). Stateful hosts
// know how often they have been probed; the snooping prober exposes that
// sequence number through the transaction ID it chooses, which is how the
// single-response-then-stop class of §2.6 is modeled.
func (w *World) HandleDNS(v Vantage, srcPort uint16, dst uint32, q *dnswire.Message, t Time) []QueryResponse {
	return w.handleDNS(v, srcPort, dst, q, t, faultCtx{})
}

// handleDNS is HandleDNS plus the per-packet fault context the in-memory
// transport threads through for retransmission redraws. Host flaps and
// rate limiting live here rather than in the transport because they are
// properties of the responding host, not of the path — and because
// trusted infrastructure (handled above the resolver path) must stay
// exempt so the measurement channels of §3 remain reliable.
func (w *World) handleDNS(v Vantage, srcPort uint16, dst uint32, q *dnswire.Message, t Time, fc faultCtx) []QueryResponse {
	seq := int(q.Header.ID)
	dst = w.Mask(dst)
	if len(q.Questions) == 0 {
		return nil
	}
	question := q.Questions[0]
	qname := dnswire.CanonicalName(question.Name)

	// Infrastructure DNS servers.
	switch role, _ := w.infra.roleParam(dst); role {
	case RoleAuthNS, RoleTrustedDNS:
		return w.answerTrusted(dst, srcPort, q)
	case RoleNone:
		// fall through to resolver handling
	default:
		return nil // web/mail infrastructure runs no DNS service
	}

	if !w.VisibleFrom(dst, v, t) {
		return nil
	}

	// A flapping host is mid-outage: silent to everything, resolver or
	// not, until its window passes. The suppression is counted here, at
	// the query-handling site, because the same predicate also backs the
	// ground-truth walk (CountRespondingAt), which must not inflate
	// traffic counters.
	if w.faultsOn && w.faultFlapped(dst, t) {
		w.fm.flapped.Inc()
		return nil
	}

	p, ok := w.ProfileAt(dst, t)
	if !ok {
		// The injector reacts to queries into Chinese address space
		// even when no resolver lives there.
		if w.geo.LookupU32(dst).Country == "CN" && question.Type == dnswire.TypeA && GFWMatches(qname) {
			resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
			resp.AddAnswer(question.Name, dnswire.ClassIN, answerTTL,
				dnswire.A{Addr: w.Addr(w.gfwRandomAddr(uint64(dst), qname))})
			return []QueryResponse{{Src: dst, ToPort: srcPort, DelayMS: 2, Msg: resp}}
		}
		return nil
	}

	src := dst
	if p.MisSourced {
		// Proxies and multi-homed hosts answer from a sibling address
		// in the same network block.
		sib := (dst &^ 0xFF) | uint32(prand.Hash(p.Identity, 0x515)%250)
		if w.infra.roleOf(w.Mask(sib)) == RoleNone {
			src = w.Mask(sib)
		}
	}
	toPort := srcPort
	if prand.UnitOf(p.Identity, 0x9047) < pPortScramble {
		toPort = uint16(1024 + prand.Hash(p.Identity, 0x9048, uint64(seq))%50000)
	}
	delay := 5 + int(prand.Hash(p.Identity, uint64(seq))%115)
	emit := func(m *dnswire.Message) []QueryResponse {
		return []QueryResponse{{Src: src, ToPort: toPort, DelayMS: delay, Msg: m}}
	}

	// Rate-limiting resolvers reject queries above their per-window
	// budget before any resolution work happens.
	if w.faultsOn {
		if refused, dropped := w.faultRateLimited(p.Identity, t, fc); dropped {
			return nil
		} else if refused {
			return emit(dnswire.NewResponse(q, dnswire.RCodeRefused))
		}
	}

	switch p.RCode {
	case RCRefused:
		return emit(dnswire.NewResponse(q, dnswire.RCodeRefused))
	case RCServFail:
		return emit(dnswire.NewResponse(q, dnswire.RCodeServFail))
	}

	// CHAOS version fingerprinting (§2.4).
	if question.Class == dnswire.ClassCH {
		return emit(w.answerChaos(&p, q, qname))
	}

	switch question.Type {
	case dnswire.TypePTR:
		return emit(w.answerPTR(q, qname))
	case dnswire.TypeNS:
		if !q.Header.RD {
			if tldIdx := snoopedTLDIndex(qname); tldIdx >= 0 {
				return w.answerSnoop(&p, q, qname, tldIdx, src, toPort, delay, t, seq)
			}
		}
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.AddAnswer(question.Name, dnswire.ClassIN, answerTTL, dnswire.NS{Host: "ns1." + qname})
		return emit(resp)
	case dnswire.TypeA:
		return w.answerA(&p, q, qname, dst, src, toPort, delay, t)
	case dnswire.TypeDNSKEY:
		return emit(w.answerDNSKEY(q, qname))
	case dnswire.TypeANY:
		return emit(w.answerANY(&p, q, qname))
	default:
		return emit(dnswire.NewResponse(q, dnswire.RCodeNotImp))
	}
}

// answerTrusted implements the measurement team's own resolvers and the
// authoritative servers: straight, hierarchy-following resolution.
func (w *World) answerTrusted(dst uint32, srcPort uint16, q *dnswire.Message) []QueryResponse {
	question := q.Questions[0]
	qname := dnswire.CanonicalName(question.Name)
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.Header.AA = true
	switch question.Type {
	case dnswire.TypePTR:
		resp = w.answerPTR(q, qname)
	case dnswire.TypeA:
		addrs, rc := w.TrustedResolve(qname)
		resp.Header.RCode = rc
		for _, a := range addrs {
			resp.AddAnswer(question.Name, dnswire.ClassIN, answerTTL, dnswire.A{Addr: w.Addr(a)})
		}
		w.signAnswer(resp, qname)
	case dnswire.TypeDNSKEY:
		resp = w.answerDNSKEY(q, qname)
	default:
		resp.Header.RCode = dnswire.RCodeNotImp
	}
	return []QueryResponse{{Src: dst, ToPort: srcPort, DelayMS: 1, Msg: resp}}
}

// answerChaos builds the CHAOS TXT response per the resolver's class.
func (w *World) answerChaos(p *Profile, q *dnswire.Message, qname string) *dnswire.Message {
	isBind := qname == "version.bind"
	isServer := qname == "version.server"
	if !isBind && !isServer {
		return dnswire.NewResponse(q, dnswire.RCodeNotImp)
	}
	switch p.Chaos {
	case ChaosError:
		code := dnswire.RCodeRefused
		if prand.Hash(p.Identity, 0xCE)%2 == 0 {
			code = dnswire.RCodeServFail
		}
		return dnswire.NewResponse(q, code)
	case ChaosEmptyVersion:
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	case ChaosHidden:
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.AddAnswer(q.Questions[0].Name, dnswire.ClassCH, 0,
			dnswire.TXT{Strings: []string{software.HiddenStrings[p.HiddenIdx]}})
		return resp
	default:
		e := software.Catalog[p.SoftwareIdx]
		text := e.Bind
		if isServer {
			text = e.Server
		}
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.AddAnswer(q.Questions[0].Name, dnswire.ClassCH, 0, dnswire.TXT{Strings: []string{text}})
		return resp
	}
}

// answerPTR resolves reverse lookups against the world's rDNS.
func (w *World) answerPTR(q *dnswire.Message, qname string) *dnswire.Message {
	u, ok := ParsePTRName(qname)
	if !ok {
		return dnswire.NewResponse(q, dnswire.RCodeNXDomain)
	}
	name := w.RDNS(w.Mask(u))
	if name == "" {
		return dnswire.NewResponse(q, dnswire.RCodeNXDomain)
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, 3600, dnswire.PTR{Target: name})
	return resp
}

// snoopedTLDIndex returns the index of a snooped TLD, or -1.
func snoopedTLDIndex(qname string) int {
	for i, tld := range domains.SnoopedTLDs {
		if qname == tld {
			return i
		}
	}
	return -1
}

// answerSnoop renders the resolver's cache view for a snooping probe.
func (w *World) answerSnoop(p *Profile, q *dnswire.Message, qname string, tldIdx int, src uint32, toPort uint16, delay int, t Time, seq int) []QueryResponse {
	// Daily-churn hosts drop out of reach partway through the window.
	sa := snoopState(p, tldIdx, t.AbsSeconds(), seq)
	if !sa.Responded {
		return nil
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	if sa.Empty || !sa.Cached {
		return []QueryResponse{{Src: src, ToPort: toPort, DelayMS: delay, Msg: resp}}
	}
	for i := 0; i < 2; i++ {
		resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, sa.TTL,
			dnswire.NS{Host: nsHostName(qname, i)})
	}
	return []QueryResponse{{Src: src, ToPort: toPort, DelayMS: delay, Msg: resp}}
}

func nsHostName(tld string, i int) string {
	return "ns" + string(rune('1'+i)) + ".nic." + strings.ReplaceAll(tld, ".", "-") + ".example"
}

// answerA synthesizes the resolver's answer for an A query, applying
// censorship policy and the manipulation profile.
func (w *World) answerA(p *Profile, q *dnswire.Message, qname string, dst, src uint32, toPort uint16, delay int, t Time) []QueryResponse {
	question := q.Questions[0]
	emit := func(m *dnswire.Message) []QueryResponse {
		return []QueryResponse{{Src: src, ToPort: toPort, DelayMS: delay, Msg: m}}
	}
	withAddrs := func(addrs ...uint32) *dnswire.Message {
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		for _, a := range addrs {
			var addr = w.Addr(a)
			if IsLANAddr(a) {
				addr = lanAddr(a)
			}
			resp.AddAnswer(question.Name, dnswire.ClassIN, answerTTL, dnswire.A{Addr: addr})
		}
		return resp
	}

	// Censorship takes precedence: it is enforced upstream of the
	// resolver's own behavior.
	switch mode, landing := w.CensorDecision(p, qname); mode {
	case CensorLanding:
		return emit(withAddrs(landing))
	case CensorGFW:
		out := emit(withAddrs(landing)) // poisoned/injected answer, never signed
		if p.GFWDouble {
			legit, _ := w.LegitAddrs(qname, p.Country)
			second := withAddrs(legit...)
			w.signAnswer(second, qname)
			out = append(out, QueryResponse{Src: src, ToPort: toPort, DelayMS: delay + 4, Msg: second})
		}
		return out
	}

	d, listed := domains.ByName(qname)
	id := p.Identity

	switch p.Manip {
	case ManipEmptyAll:
		return emit(dnswire.NewResponse(q, dnswire.RCodeNoError))
	case ManipStaticIP:
		return emit(withAddrs(w.staticAnswerAddr(id)))
	case ManipSelfIP:
		return emit(withAddrs(dst))
	case ManipCaptiveLAN:
		if prand.UnitOf(id, 0xCA9) < 0.5 {
			return emit(withAddrs(w.infra.addrOf(RoleLoginPortal, int(prand.Hash(id, 0xCAA)%nLoginPortal))))
		}
		return emit(withAddrs(lanBase + 1 + uint32(prand.Hash(id, 0xCAB)%4)))
	case ManipWildPark:
		return emit(withAddrs(w.infra.addrOf(RoleParking, int(prand.Hash(id, 0x9A4)%nParking))))
	case ManipStaleMis:
		v := prand.UnitOf(id, 0x57A1E, hashString(qname))
		switch {
		case v < 0.60:
			return emit(withAddrs(w.infra.addrOf(RoleErrorPage, int(prand.Hash(id, hashString(qname))%nErrorPage))))
		case v < 0.85:
			return emit(withAddrs(w.infra.addrOf(RoleDeadCDN, int(prand.Hash(id, 0xDEAD)%nDeadCDN))))
		default:
			sib := (dst &^ 0xFF) | uint32(prand.Hash(id, 0x24)%250)
			return emit(withAddrs(w.Mask(sib)))
		}
	case ManipNSOnly:
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.AddAuthority(question.Name, dnswire.ClassIN, answerTTL, dnswire.NS{Host: "ns1." + qname})
		return emit(resp)
	case ManipProtect:
		if listed && d.Category == domains.Malware {
			if prand.UnitOf(id, 0x9207) < 0.7 {
				return emit(dnswire.NewResponse(q, dnswire.RCodeNoError))
			}
			return emit(withAddrs(w.infra.addrOf(RoleBlockPage, int(prand.Hash(id, 0x9208)%nBlockPage))))
		}
	case ManipNXMonetize:
		if w.monetizes(qname, d, listed, id) {
			return emit(withAddrs(w.monetizeAddr(id, qname)))
		}
	case ManipMailRedir:
		if listed && d.Category == domains.MX {
			return emit(withAddrs(w.infra.addrOf(RoleMailSniff, int(prand.Hash(id, 0x3A11)%nMailSniff))))
		}
	case ManipAdRedirect:
		if listed && d.Category == domains.Ads {
			if prand.Hash(id, 0xAD)%2 == 0 {
				return emit(withAddrs(w.infra.addrOf(RoleAdInjectHTML, int(prand.Hash(id, 0xAD1)%nAdInjHTML))))
			}
			return emit(withAddrs(w.infra.addrOf(RoleAdInjectJS, int(prand.Hash(id, 0xAD2)%nAdInjJS))))
		}
	case ManipAdBlock:
		if listed && d.Category == domains.Ads {
			return emit(withAddrs(w.infra.addrOf(RoleAdBlockEmpty, int(prand.Hash(id, 0xADB)%nAdBlock))))
		}
	case ManipAdFakeSearch:
		if qname == "google.com" || qname == "bing.com" || qname == "duckduckgo.com" {
			return emit(withAddrs(w.infra.addrOf(RoleAdFakeSearch, int(prand.Hash(id, 0xADF)%nAdFake))))
		}
	case ManipProxyTLS:
		return emit(withAddrs(w.infra.addrOf(RoleProxyTLS, int(prand.Hash(id, 0x960)%nProxyTLS))))
	case ManipProxyPlain:
		return emit(withAddrs(w.infra.addrOf(RoleProxyPlain, int(prand.Hash(id, 0x961)%nProxyPlain))))
	case ManipPhishPayPal:
		if qname == "paypal.com" {
			return emit(withAddrs(w.infra.addrOf(RolePhishPayPal, int(prand.Hash(id, 0xF15)%nPhishPayPal))))
		}
	case ManipPhishBankBR:
		if qname == "intesasanpaolo.it" {
			return emit(withAddrs(w.infra.addrOf(RolePhishBankBR, 0)))
		}
	case ManipPhishBankRU:
		if qname == "intesasanpaolo.it" {
			return emit(withAddrs(w.infra.addrOf(RolePhishBankRU, 0)))
		}
	case ManipPhishOther:
		if listed && d.Category == domains.Banking && prand.UnitOf(id, 0xF16, hashString(qname)) < 0.12 {
			return emit(withAddrs(w.infra.addrOf(RolePhishOther, int(prand.Hash(id, 0xF17, hashString(qname))%nPhishOther))))
		}
	case ManipMalware:
		if isUpdateDomain(qname) {
			return emit(withAddrs(w.infra.addrOf(RoleMalware, int(prand.Hash(id, 0x3A1)%nMalware))))
		}
	}

	// Honest resolution (possibly with per-domain quirks).
	if role, prob := domainQuirk(qname); prob > 0 && prand.UnitOf(id, 0x2B1, hashString(qname)) < prob {
		return emit(withAddrs(w.infra.addrOf(role, int(prand.Hash(id, 0x2B2)%uint64(w.infra.rangeSize(role))))))
	}
	addrs, rc := w.LegitAddrs(qname, p.Country)
	if rc == dnswire.RCodeNXDomain {
		// A share of resolvers translates NXDOMAIN into empty NOERROR.
		if prand.UnitOf(id, 0x88F) < 0.3 {
			return emit(dnswire.NewResponse(q, dnswire.RCodeNoError))
		}
		return emit(dnswire.NewResponse(q, dnswire.RCodeNXDomain))
	}
	resp := withAddrs(addrs...)
	w.signAnswer(resp, qname)
	return emit(resp)
}

// monetizes reports whether an NX-monetizing resolver intercepts this
// name: true NXDOMAIN names always; six of the 13 malware domains are
// additionally blacklist-intercepted even though they exist (§4.2).
func (w *World) monetizes(qname string, d domains.Domain, listed bool, id uint64) bool {
	if listed && d.Kind == domains.KindNonexistent {
		return true
	}
	if !listed {
		return false
	}
	if d.Category == domains.Malware && prand.UnitOf(hashString(qname), 0x6D1) < 0.46 {
		return true
	}
	return false
}

// monetizeAddr picks the landing type of an NX-monetizing resolver,
// matching the NX column of Table 5 (Search 35.7%, Parking 23.2%, HTTP
// Error 24.7%, Misc 8.5%, Login 2.8%, Blocking ~2%).
func (w *World) monetizeAddr(id uint64, qname string) uint32 {
	v := prand.UnitOf(id, 0x6D2)
	h := int(prand.Hash(id, 0x6D3, hashString(qname)))
	switch {
	case v < 0.36:
		return w.infra.addrOf(RoleSearchPage, h%nSearch)
	case v < 0.36+0.23:
		return w.infra.addrOf(RoleParking, h%nParking)
	case v < 0.36+0.23+0.25:
		return w.infra.addrOf(RoleErrorPage, h%nErrorPage)
	case v < 0.36+0.23+0.25+0.03:
		return w.infra.addrOf(RoleLoginPortal, h%nLoginPortal)
	case v < 0.36+0.23+0.25+0.03+0.02:
		return w.infra.addrOf(RoleBlockPage, h%nBlockPage)
	default:
		// Misc: some unrelated website.
		return w.infra.addrOf(RoleSiteHost, h%nSiteHost)
	}
}

// staticAnswerAddr is the single address a static-answer resolver returns
// for every query.
func (w *World) staticAnswerAddr(id uint64) uint32 {
	v := prand.UnitOf(id, facetStaticIP)
	h := int(prand.Hash(id, facetStaticIP, 1))
	switch {
	case v < 0.3:
		return w.infra.addrOf(RoleErrorPage, h%nErrorPage)
	case v < 0.5:
		return w.infra.addrOf(RoleParking, h%nParking)
	default:
		// A random address that usually serves nothing.
		return w.Mask(uint32(prand.Hash(id, facetStaticIP, 2)))
	}
}

// domainQuirk returns population-wide oddities of specific domains: the
// two re-registered Chinese malware domains resolve to parking for most
// resolvers, as does torproject.org for a small share (§4.2).
func domainQuirk(qname string) (Role, float64) {
	switch qname {
	case "cn-loader.wicked.example.cn", "cn-seller.wicked.example.cn":
		return RoleParking, 0.90
	case "torproject.org":
		return RoleParking, 0.02
	default:
		return RoleNone, 0
	}
}

// isUpdateDomain matches the software-update domains the malware
// droppers impersonate (Adobe Flash and Java update pages).
func isUpdateDomain(qname string) bool {
	switch qname {
	case "update.adobe.example", "ardownload.adobe.example",
		"update.oracle.example", "windowsupdate.com", "update.microsoft.com":
		return true
	}
	return false
}

// lanAddr renders RFC1918 answers without folding them into the world
// space (they must look like real LAN addresses to the client).
func lanAddr(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}
