package wildnet

import (
	"fmt"
	"sync"

	"goingwild/internal/prand"
)

// FaultConfig layers deterministic network pathologies on top of the base
// loss model. Every fault is a pure per-packet (or per-host, or
// per-window) draw keyed on the world seed, a dedicated facet, the
// addresses and payload involved, the simulation clock, and — for
// retransmissions — an attempt number, so the fault pattern is a pure
// function of (seed, traffic) and byte-identical across runs and
// GOMAXPROCS, exactly like the base world.
//
// The zero value disables the layer entirely: the transport hot path then
// pays one boolean load and nothing else, and the world's behavior is
// bit-for-bit what it was before the layer existed.
type FaultConfig struct {
	// ExtraLoss is an additional independent per-packet loss
	// probability, applied to queries and responses on top of
	// Config.Loss.
	ExtraLoss float64
	// BurstProb is the probability that a given (host, burst window) is
	// inside a loss burst; during a burst every packet to or from the
	// host is dropped with probability BurstLoss instead of ExtraLoss.
	// Bursts model correlated congestive loss: retransmissions inside
	// the window redraw their individual fate but stay under the
	// elevated rate.
	BurstProb float64
	// BurstLoss is the per-packet loss probability during a burst.
	BurstLoss float64
	// BurstWindowSec is the burst correlation window in simulated
	// seconds (default 30 when bursts are enabled).
	BurstWindowSec int

	// LatencyBaseMS is a per-hop latency added to every response's
	// delivery delay; LatencyJitterMS is the maximum additional seeded
	// jitter. On the in-memory transport delay is ordering metadata (it
	// decides response races and deadline drops); on the UDP gateway it
	// becomes real timer delay through the injected clock.
	LatencyBaseMS   int
	LatencyJitterMS int
	// DeadlineMS drops responses whose total delay exceeds it — the
	// scanner's socket has moved on. Zero means no deadline.
	DeadlineMS int

	// DupProb duplicates a delivered response (the second copy arrives
	// back-to-back, as after a retransmitting middlebox).
	DupProb float64
	// GarbleProb corrupts a few bytes of a response before delivery,
	// modeling broken responders that mangle the answers they build
	// (true in-flight damage dies at the UDP checksum). The transaction
	// ID and echoed question name are preserved — see faultGarble.
	// Receivers must treat the result like any malformed datagram:
	// parse failures vanish, they never panic.
	GarbleProb float64

	// RateLimitShare is the share of resolvers that enforce a per-window
	// query budget. A limiter admits RateLimitPass of its query space
	// per window (a statistical budget: admission is a pure draw per
	// (identity, window, payload, attempt), so no counter state is
	// needed and the draw stays schedule-independent); of the rejected
	// queries, RateLimitRefuse are answered REFUSED and the rest are
	// silently dropped. Trusted infrastructure never rate-limits.
	RateLimitShare  float64
	RateLimitPass   float64
	RateLimitRefuse float64

	// FlapProb is the probability that a given (host, flap window) is in
	// a mid-scan outage: the host answers nothing for the window, then
	// returns. Layered on the churn model — the lease does not change,
	// the host is just unreachable. FlapWindowMin is the outage window
	// in simulated minutes (default 10 when flaps are enabled).
	FlapProb      float64
	FlapWindowMin int
}

// Enabled reports whether any fault is configured.
func (f FaultConfig) Enabled() bool { return f != (FaultConfig{}) }

// validate rejects out-of-range probabilities at world construction so a
// typo'd profile fails loudly instead of skewing draws.
func (f FaultConfig) validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"ExtraLoss", f.ExtraLoss}, {"BurstProb", f.BurstProb}, {"BurstLoss", f.BurstLoss},
		{"DupProb", f.DupProb}, {"GarbleProb", f.GarbleProb},
		{"RateLimitShare", f.RateLimitShare}, {"RateLimitPass", f.RateLimitPass},
		{"RateLimitRefuse", f.RateLimitRefuse}, {"FlapProb", f.FlapProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("wildnet: fault %s = %v out of [0, 1]", p.name, p.v)
		}
	}
	if f.LatencyBaseMS < 0 || f.LatencyJitterMS < 0 || f.DeadlineMS < 0 ||
		f.BurstWindowSec < 0 || f.FlapWindowMin < 0 {
		return fmt.Errorf("wildnet: negative fault duration")
	}
	return nil
}

// burstWindow returns the burst correlation window of t.
func (f *FaultConfig) burstWindow(t Time) uint64 {
	w := f.BurstWindowSec
	if w <= 0 {
		w = 30
	}
	return uint64(t.AbsSeconds()) / uint64(w)
}

// flapWindow returns the outage window of t.
func (f *FaultConfig) flapWindow(t Time) uint64 {
	w := f.FlapWindowMin
	if w <= 0 {
		w = 10
	}
	return uint64(t.AbsSeconds()) / 60 / uint64(w)
}

// ChaosProfileNames lists the named chaos profiles, mildest first.
func ChaosProfileNames() []string { return []string{"clean", "lossy", "hostile", "flaky"} }

// ChaosProfile returns one of the named fault profiles the chaos harness
// (and the cmds' -chaos flag) runs the pipeline under:
//
//	clean   — no injected faults; the pre-existing 0.2% base loss only.
//	lossy   — heavy independent loss plus congestive bursts and jitter;
//	          the profile the retransmission machinery must ride over.
//	hostile — everything at once: bursts, deadline-busting latency,
//	          duplication, garbled bytes, and rate-limiting resolvers.
//	flaky   — mid-scan host outages layered on churn, mild loss, and a
//	          small rate-limited population.
func ChaosProfile(name string) (FaultConfig, error) {
	switch name {
	case "clean":
		return FaultConfig{}, nil
	case "lossy":
		return FaultConfig{
			ExtraLoss:       0.02,
			BurstProb:       0.004,
			BurstLoss:       0.85,
			BurstWindowSec:  30,
			LatencyBaseMS:   20,
			LatencyJitterMS: 60,
		}, nil
	case "hostile":
		return FaultConfig{
			ExtraLoss:       0.01,
			BurstProb:       0.01,
			BurstLoss:       0.90,
			BurstWindowSec:  30,
			LatencyBaseMS:   40,
			LatencyJitterMS: 120,
			DeadlineMS:      260,
			DupProb:         0.02,
			GarbleProb:      0.03,
			RateLimitShare:  0.10,
			RateLimitPass:   0.50,
			RateLimitRefuse: 0.50,
		}, nil
	case "flaky":
		return FaultConfig{
			ExtraLoss:       0.005,
			LatencyBaseMS:   10,
			LatencyJitterMS: 30,
			FlapProb:        0.03,
			FlapWindowMin:   10,
			RateLimitShare:  0.05,
			RateLimitPass:   0.70,
			RateLimitRefuse: 0.70,
		}, nil
	default:
		return FaultConfig{}, fmt.Errorf("wildnet: unknown chaos profile %q (have %v)", name, ChaosProfileNames())
	}
}

// MustChaosProfile is ChaosProfile for statically-known names.
func MustChaosProfile(name string) FaultConfig {
	f, err := ChaosProfile(name)
	if err != nil {
		panic(err)
	}
	return f
}

// faultCtx carries per-packet retransmission context from the transport
// into the fault draws: the query payload's hash and how many identical
// copies preceded it at the current simulated instant. The zero value
// (first transmission, unhashed) is what non-fault paths pass.
type faultCtx struct {
	payloadHash uint64
	attempt     uint64
}

// faultLossProb returns the fault-layer loss probability for a packet
// touching host addr at time t — the burst rate inside a burst window,
// the independent extra rate outside — and whether a burst applied.
func (w *World) faultLossProb(addr uint32, t Time) (p float64, burst bool) {
	f := &w.cfg.Faults
	if f.BurstProb > 0 &&
		prand.UnitOf(w.cfg.Seed, facetFaultBurst, uint64(addr), f.burstWindow(t)) < f.BurstProb {
		return f.BurstLoss, true
	}
	return f.ExtraLoss, false
}

// faultDrop draws the fault-layer fate of one packet. Unlike the base
// loss draw, the attempt number participates: a retransmission of the
// identical payload gets an independent redraw, which is what makes
// retrying meaningful under a fault profile.
func (w *World) faultDrop(dir uint64, addr uint32, aPort, bPort uint16, ph uint64, t Time, attempt uint64) bool {
	p, burst := w.faultLossProb(addr, t)
	if p <= 0 {
		return false
	}
	h := prand.Hash(w.cfg.Seed, facetFaultDrop, dir, uint64(addr),
		uint64(aPort)<<16|uint64(bPort), ph,
		uint64(t.AbsHour()*60+t.Minute), attempt)
	if prand.Float64(h) >= p {
		return false
	}
	if dir == dirQuery {
		w.fm.dropQuery.Inc()
	} else {
		w.fm.dropResponse.Inc()
	}
	if burst {
		w.fm.dropBurst.Inc()
	}
	return true
}

// faultFlapped reports whether host u is inside a flap outage at t. The
// draw is keyed on the flap window, so a host that vanishes mid-scan
// comes back a window later — an outage, not churn.
func (w *World) faultFlapped(u uint32, t Time) bool {
	f := &w.cfg.Faults
	if f.FlapProb <= 0 {
		return false
	}
	return prand.UnitOf(w.cfg.Seed, facetFaultFlap, uint64(u), f.flapWindow(t)) < f.FlapProb
}

// faultRateLimited draws the rate-limiter verdict for a resolver query:
// refused answers REFUSED, dropped vanishes, neither means admitted.
// identity is the resolver's lease identity, so a limiter keeps limiting
// for exactly one tenancy.
func (w *World) faultRateLimited(identity uint64, t Time, fc faultCtx) (refused, dropped bool) {
	f := &w.cfg.Faults
	if f.RateLimitShare <= 0 {
		return false, false
	}
	if prand.UnitOf(identity, facetFaultRateCls) >= f.RateLimitShare {
		return false, false
	}
	win := uint64(t.AbsSeconds()) / 60
	if prand.UnitOf(identity, facetFaultRate, win, fc.payloadHash, fc.attempt) < f.RateLimitPass {
		return false, false // admitted under the window budget
	}
	if prand.UnitOf(identity, facetFaultRate, 1, win, fc.payloadHash, fc.attempt) < f.RateLimitRefuse {
		w.fm.rateRefused.Inc()
		return true, false
	}
	w.fm.rateDropped.Inc()
	return false, true
}

// faultAdjustResponses applies latency, jitter, and the delivery deadline
// to a response set in place, returning the (possibly shortened) slice.
// It runs before the transport's delay sort so injected-response races
// are decided on the faulted timeline.
func (w *World) faultAdjustResponses(resps []QueryResponse, t Time, fc faultCtx) []QueryResponse {
	f := &w.cfg.Faults
	if f.LatencyBaseMS == 0 && f.LatencyJitterMS == 0 && f.DeadlineMS == 0 {
		return resps
	}
	out := resps[:0]
	for i := range resps {
		r := resps[i]
		delta := f.LatencyBaseMS
		if f.LatencyJitterMS > 0 {
			h := prand.Hash(w.cfg.Seed, facetFaultLatency, uint64(r.Src), fc.payloadHash,
				uint64(i), uint64(t.AbsHour()*60+t.Minute), fc.attempt)
			delta += prand.IntN(h, f.LatencyJitterMS+1)
		}
		r.DelayMS += delta
		if f.DeadlineMS > 0 && r.DelayMS > f.DeadlineMS {
			continue // arrived after the scanner stopped listening
		}
		out = append(out, r)
	}
	return out
}

// faultGarble corrupts 1–3 bytes of a packed response in place when the
// garble draw fires. The buffer is pooled transport scratch, so in-place
// mutation is free; the receiver sees the corruption like any malformed
// datagram from the real Internet.
//
// The transaction ID (bytes 0–1) and the echoed question name are never
// corrupted. On a real network, in-flight bit damage is caught by the
// UDP checksum and the datagram never reaches the scanner, so a
// garbled-but-delivered response models a broken responder mangling the
// answer it builds — and a responder that answers at all echoes the ID
// and question from the query it is holding. Operationally this
// protection is what keeps scans schedule-independent: those bytes
// carry the probe identifier (txid plus 0x20 casing, §3.3), and a
// corrupted identifier would route the response into another probe's
// accounting concurrently with that probe's own answer, making the
// recorded winner a matter of goroutine timing rather than of the
// seed.
func (w *World) faultGarble(wire []byte, src uint32, rph uint64, t Time, attempt uint64) {
	f := &w.cfg.Faults
	if f.GarbleProb <= 0 || len(wire) == 0 {
		return
	}
	h := prand.Hash(w.cfg.Seed, facetFaultGarble, uint64(src), rph,
		uint64(t.AbsHour()*60+t.Minute), attempt)
	if prand.Float64(h) >= f.GarbleProb {
		return
	}
	qs, qe := garbleProtectedRange(wire)
	eligible := len(wire) - 2 - (qe - qs)
	if eligible <= 0 {
		return
	}
	w.fm.garbled.Inc()
	n := 1 + prand.IntN(h>>8, 3)
	for k := 0; k < n; k++ {
		pos := 2 + prand.IntN(prand.Hash(h, uint64(k)), eligible)
		if pos >= qs {
			pos += qe - qs
		}
		wire[pos] ^= byte(prand.Hash(h, uint64(k), 0xFF)) | 1
	}
}

// garbleProtectedRange returns the half-open byte range of the first
// question's name (empty when the packet carries no parsable question),
// which faultGarble must leave intact along with the transaction ID.
func garbleProtectedRange(wire []byte) (qs, qe int) {
	const hdr = 12
	if len(wire) < hdr+1 || wire[4] == 0 && wire[5] == 0 {
		return hdr, hdr // no question section
	}
	off := hdr
	for off < len(wire) {
		l := int(wire[off])
		if l == 0 {
			off++
			break
		}
		if l >= 0xC0 { // compression pointer terminates the name
			off += 2
			break
		}
		off += 1 + l
	}
	if off > len(wire) {
		off = len(wire)
	}
	return hdr, off
}

// faultDup reports whether a delivered response is duplicated.
func (w *World) faultDup(src uint32, rph uint64, t Time, attempt uint64) bool {
	f := &w.cfg.Faults
	if f.DupProb <= 0 {
		return false
	}
	if prand.UnitOf(w.cfg.Seed, facetFaultDup, uint64(src), rph,
		uint64(t.AbsHour()*60+t.Minute), attempt) >= f.DupProb {
		return false
	}
	w.fm.duplicated.Inc()
	return true
}

// CountRespondingAt iterates the whole address space and returns the
// planted ground truth a lossless sweep from vantage v at time t would
// measure: every resolver that is present, visible, not blacklisted by
// skip, and not inside a flap outage. The chaos harness compares measured
// sweep totals against this count, so its tolerance covers exactly the
// loss-like faults (base loss, bursts, rate-limit drops, garbling) and
// nothing the world model already decides.
func (w *World) CountRespondingAt(v Vantage, t Time, skip func(u uint32) bool) int {
	n := 0
	for u := uint64(0); u < w.SpaceSize(); u++ {
		a := uint32(u)
		if skip != nil && skip(a) {
			continue
		}
		if !w.ResolverAt(a, t) || !w.VisibleFrom(a, v, t) {
			continue
		}
		if w.faultsOn && w.faultFlapped(a, t) {
			continue
		}
		n++
	}
	return n
}

// attemptShards keeps the retransmission counter's lock striping wide
// enough that parallel sender workers rarely collide.
const attemptShards = 64

// attemptCounter counts identical (destination, payload) transmissions at
// the current simulated instant, feeding the attempt term of the fault
// draws so retransmitting an unchanged probe redraws its fate. The count
// is schedule-independent under the scanner's contract: identical
// payloads are only ever re-sent across settle-barriered retry rounds,
// never concurrently, so the k-th copy observes exactly k-1 predecessors
// no matter how goroutines interleave within a round. SetTime resets the
// counter — a new simulated instant redraws everything anyway.
type attemptCounter struct {
	shards [attemptShards]struct {
		mu sync.Mutex
		m  map[attemptKey]uint64
	}
}

type attemptKey struct {
	addr uint32
	ph   uint64
}

func newAttemptCounter() *attemptCounter {
	c := &attemptCounter{}
	for i := range c.shards {
		c.shards[i].m = make(map[attemptKey]uint64)
	}
	return c
}

// next returns how many identical packets preceded this one and records
// the transmission.
func (c *attemptCounter) next(addr uint32, ph uint64) uint64 {
	s := &c.shards[ph%attemptShards]
	s.mu.Lock()
	k := attemptKey{addr: addr, ph: ph}
	n := s.m[k]
	s.m[k] = n + 1
	s.mu.Unlock()
	return n
}

// reset clears every shard (called from SetTime).
func (c *attemptCounter) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.mu.Unlock()
	}
}
