package wildnet

import (
	"context"
	"errors"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
	"goingwild/internal/prand"
)

// Transport is the scanner's view of the network: fire-and-forget UDP
// datagrams toward virtual addresses, with responses delivered to a
// receiver callback. Two implementations exist: the in-memory transport
// below, which scales to millions of hosts, and the loopback UDP gateway
// (udpgate.go), which drives the same world over real sockets.
// scanner.Transport is an alias of this interface, so the two layers can
// never drift.
type Transport interface {
	// Send transmits one datagram from the scanner's srcPort to
	// dst:dstPort. Delivery is not guaranteed (packet loss is part of
	// the model, §5 "Completeness"). A cancelled ctx aborts the send —
	// including, on the synchronous in-memory transport, the response
	// deliveries that happen inside Send — with ctx.Err().
	Send(ctx context.Context, dst netip.Addr, dstPort, srcPort uint16, payload []byte) error
	// SetReceiver registers the response callback. It must be called
	// before the first Send. The callback may run concurrently, and must
	// not retain payload after returning: the in-memory transport packs
	// responses into pooled buffers that are reused for later deliveries.
	SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte))
	// Close releases resources; no callbacks run after Close returns.
	Close() error
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("wildnet: transport closed")

// errIPv4Only rejects non-IPv4 destinations on every transport.
var errIPv4Only = errors.New("wildnet: transport is IPv4-only")

// Probe is one ready-to-send datagram for batched dispatch. Payload is
// borrowed for the duration of the SendBatch call only: transports must
// not retain it, mirroring the receiver-side contract.
type Probe struct {
	Dst     netip.Addr
	DstPort uint16
	SrcPort uint16
	Payload []byte
}

// BatchSender is the optional bulk extension of Transport: SendBatch
// dispatches the probes in order with per-probe semantics identical to
// calling Send once per probe, but lets the implementation amortize
// per-packet overhead — the in-memory transport takes its clock lock and
// receiver load once per batch, the UDP gateway transport hands the
// kernel the whole batch in one sendmmsg(2). It returns how many probes
// were processed; on error, probes [0, n) were handled and batch[n] was
// not. Scan engines type-assert for this interface and fall back to the
// Send loop when it is absent.
type BatchSender interface {
	SendBatch(ctx context.Context, batch []Probe) (int, error)
}

// MemTransport delivers packets synchronously through the world model.
// Responses are invoked on the caller's goroutine in delay order, so a
// scan's concurrency model is exercised without real timers.
type MemTransport struct {
	world   *World
	vantage Vantage
	recv    atomic.Pointer[func(src netip.Addr, srcPort, dstPort uint16, payload []byte)]
	closed  atomic.Bool

	mu    sync.Mutex
	clock Time

	// attempts counts identical retransmissions for the fault layer's
	// redraws; nil (and never touched) when the world has no faults.
	attempts *attemptCounter
}

// NewMemTransport wires a scanner vantage to the world.
func NewMemTransport(w *World, v Vantage) *MemTransport {
	m := &MemTransport{world: w, vantage: v}
	if w.faultsOn {
		m.attempts = newAttemptCounter()
	}
	return m
}

// SetTime moves the transport's simulation clock; subsequent queries are
// answered as of t. A new simulated instant redraws every packet fate, so
// the fault layer's retransmission counter restarts with it.
func (m *MemTransport) SetTime(t Time) {
	m.mu.Lock()
	m.clock = t
	m.mu.Unlock()
	if m.attempts != nil {
		m.attempts.reset()
	}
}

// Time returns the current simulation clock.
func (m *MemTransport) Time() Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// SetReceiver implements Transport.
func (m *MemTransport) SetReceiver(f func(src netip.Addr, srcPort, dstPort uint16, payload []byte)) {
	m.recv.Store(&f)
}

// queryPool recycles the per-Send query Message. HandleDNS never retains
// the query (responses copy the question section), so the Message and its
// section slices can be reused across sends.
var queryPool = sync.Pool{New: func() any { return new(dnswire.Message) }}

// packScratch is one response-packing workspace: the wire buffer and the
// name-compression map PackInto fills.
type packScratch struct {
	buf []byte
	cmp map[string]int
}

var packPool = sync.Pool{New: func() any {
	return &packScratch{buf: make([]byte, 0, 512), cmp: make(map[string]int, 8)}
}}

// Send implements Transport: the query is processed by the world and all
// surviving responses are delivered to the receiver before Send returns.
// This is the hot path of every simulated scan — one call per probe — so
// the query parse, the response packing, and the two-response common case
// of the sort all run against pooled storage, and the context is checked
// only at loop edges (entry and between response deliveries), never per
// byte.
func (m *MemTransport) Send(ctx context.Context, dst netip.Addr, dstPort, srcPort uint16, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.closed.Load() {
		return ErrTransportClosed
	}
	if !dst.Is4() {
		return errIPv4Only
	}
	t := m.Time()
	u32dst := lfsr.AddrToU32(dst)
	// Fast reject: when the fault layer is off and the destination
	// provably answers nothing, skip the hash, the loss draw, and the
	// parse entirely. Rejected packets have no observable fate — the
	// loss draw is pure and unmetered — so results are byte-identical.
	if !m.world.faultsOn {
		switch m.world.sweepClassify(u32dst, m.vantage, t, m.world.blockCache(t.Week)) {
		case classReject:
			return nil
		case classCNOnly:
			if !m.cnCouldAnswer(dstPort, payload) {
				return nil
			}
		}
	}
	return m.process(ctx, u32dst, dstPort, srcPort, payload, t)
}

// SendBatch implements BatchSender: per-probe semantics are exactly those
// of Send, with the clock lock, the receiver load, and the fault-layer
// gate amortized over the whole batch.
func (m *MemTransport) SendBatch(ctx context.Context, batch []Probe) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if m.closed.Load() {
		return 0, ErrTransportClosed
	}
	t := m.Time()
	fastOK := !m.world.faultsOn
	var bc *rejectCache
	if fastOK {
		bc = m.world.blockCache(t.Week)
	}
	for i := range batch {
		p := &batch[i]
		if !p.Dst.Is4() {
			return i, errIPv4Only
		}
		u32dst := lfsr.AddrToU32(p.Dst)
		if fastOK {
			switch m.world.sweepClassify(u32dst, m.vantage, t, bc) {
			case classReject:
				continue
			case classCNOnly:
				if !m.cnCouldAnswer(p.DstPort, p.Payload) {
					continue
				}
			}
		}
		if err := m.process(ctx, u32dst, p.DstPort, p.SrcPort, p.Payload, t); err != nil {
			return i, err
		}
	}
	return len(batch), nil
}

// process runs one datagram through the world at simulated time t and
// delivers the surviving responses. It is the shared tail of Send and
// SendBatch.
func (m *MemTransport) process(ctx context.Context, u32dst uint32, dstPort, srcPort uint16, payload []byte, t Time) error {
	qph := hashBytes(payload)
	// Independent loss on the query packet.
	if m.drop(dirQuery, u32dst, dstPort, srcPort, qph, t) {
		return nil
	}
	// The fault layer rides behind one cached bool: a zero FaultConfig
	// costs the hot path nothing beyond this branch.
	var fc faultCtx
	if m.world.faultsOn {
		fc = faultCtx{payloadHash: qph, attempt: m.attempts.next(u32dst, qph)}
		if m.world.faultDrop(dirQuery, u32dst, dstPort, srcPort, qph, t, fc.attempt) {
			return nil
		}
	}
	q := queryPool.Get().(*dnswire.Message)
	defer queryPool.Put(q)
	if err := dnswire.UnpackInto(payload, q); err != nil {
		return nil // malformed packets vanish, as on the real Internet
	}
	if dstPort != 53 {
		return nil
	}
	resps := m.world.handleDNS(m.vantage, srcPort, u32dst, q, t, fc)
	if len(resps) == 0 {
		return nil
	}
	if m.world.faultsOn {
		// Latency, jitter, and the delivery deadline reshape the
		// response timeline before the delay sort, so injected-response
		// races are decided on the faulted ordering.
		resps = m.world.faultAdjustResponses(resps, t, fc)
	}
	// Deliver in delay order. Almost every exchange yields one or two
	// responses (the second being an injected racer, §4.2); swap those in
	// place instead of paying sort.SliceStable's interface overhead.
	switch {
	case len(resps) == 2:
		if resps[1].DelayMS < resps[0].DelayMS {
			resps[0], resps[1] = resps[1], resps[0]
		}
	case len(resps) > 2:
		sort.SliceStable(resps, func(i, j int) bool { return resps[i].DelayMS < resps[j].DelayMS })
	}
	recv := m.recv.Load()
	if recv == nil {
		return nil
	}
	limit := m.world.UDPPayloadLimit(u32dst, q, t)
	ps := packPool.Get().(*packScratch)
	defer packPool.Put(ps)
	for _, r := range resps {
		// A context death mid-delivery drops the remaining responses,
		// exactly as a real cancelled scan stops reading its socket.
		if err := ctx.Err(); err != nil {
			return err
		}
		// Pack once; oversized responses are re-packed as an empty
		// TC-bit reply (the Truncate contract) rather than packed twice.
		wire, err := r.Msg.PackInto(ps.buf, ps.cmp)
		if err != nil {
			continue
		}
		ps.buf = wire[:0]
		if len(wire) > limit {
			tc := dnswire.Message{Header: r.Msg.Header, Questions: r.Msg.Questions}
			tc.Header.TC = true
			wire, err = tc.PackInto(ps.buf, ps.cmp)
			if err != nil {
				continue
			}
			ps.buf = wire[:0]
		}
		rph := hashBytes(wire)
		if m.drop(dirResponse, r.Src, 53, r.ToPort, rph, t) {
			continue
		}
		deliveries := 1
		if m.world.faultsOn {
			if m.world.faultDrop(dirResponse, r.Src, 53, r.ToPort, rph, t, fc.attempt) {
				continue
			}
			// Garble mutates the pooled wire in place; the draw keys on
			// the pre-corruption hash so it stays a pure packet fate.
			m.world.faultGarble(wire, r.Src, rph, t, fc.attempt)
			if m.world.faultDup(r.Src, rph, t, fc.attempt) {
				deliveries = 2
			}
		}
		if m.closed.Load() {
			return ErrTransportClosed
		}
		for d := 0; d < deliveries; d++ {
			(*recv)(m.world.Addr(r.Src), 53, r.ToPort, wire)
		}
	}
	return nil
}

// QueryTCP performs a synchronous DNS-over-TCP exchange with the resolver
// at dst, for truncated-response fallback. ok is false when the resolver
// offers no TCP service.
func (m *MemTransport) QueryTCP(dst netip.Addr, payload []byte) ([]byte, bool) {
	if m.closed.Load() || !dst.Is4() {
		return nil, false
	}
	q, err := dnswire.Unpack(payload)
	if err != nil {
		return nil, false
	}
	resp := m.world.HandleDNSTCP(m.vantage, lfsr.AddrToU32(dst), q, m.Time())
	if resp == nil {
		return nil, false
	}
	wire, err := resp.PackBytes()
	if err != nil {
		return nil, false
	}
	return wire, true
}

// Loss-draw direction tags, so a query and its response get independent
// fates even when their bytes coincide.
const (
	dirQuery    = 0
	dirResponse = 1
)

// drop applies the configured loss rate as a pure function of the
// datagram and the simulation clock, never of arrival order: the same
// packet at the same simulated minute always shares one fate, no matter
// how many goroutines race to send, so seeded runs are byte-identical
// regardless of scheduling. The flip side is that an identical
// retransmission within the same simulated minute is pointless against
// the base rate — advance the clock (as the weekly/hourly experiments
// do), or vary the payload (as the sweep's retry rounds do), to redraw.
// The fault layer's draws additionally key on a retransmission counter
// (faultCtx.attempt), so retrying is meaningful under a chaos profile.
func (m *MemTransport) drop(dir uint64, addr uint32, aPort, bPort uint16, ph uint64, t Time) bool {
	if m.world.cfg.Loss <= 0 {
		return false
	}
	h := prand.Hash(m.world.cfg.Seed, facetLoss, dir, uint64(addr),
		uint64(aPort)<<16|uint64(bPort), ph,
		uint64(t.AbsHour()*60+t.Minute))
	return prand.Float64(h) < m.world.cfg.Loss
}

// hashBytes folds a payload into one word (FNV-1a).
func hashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// Close implements Transport.
func (m *MemTransport) Close() error {
	m.closed.Store(true)
	return nil
}
