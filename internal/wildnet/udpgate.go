package wildnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

// The loopback UDP gateway exposes the whole virtual Internet behind one
// real UDP socket, so the scanner's socket handling, timeouts, and rate
// limiting run against the kernel's network stack. Because a single
// loopback listener cannot own four billion addresses, datagrams carry an
// 8-byte tunnel header naming the virtual endpoint:
//
//	bytes 0..3  virtual peer IPv4 address (big endian)
//	bytes 4..5  virtual peer port
//	bytes 6..7  scanner-side virtual port
//
// On the way in, the header names the destination resolver; on the way
// out, the virtual source. This mirrors the paper's own trick of encoding
// the probed target inside the request so responses can be attributed
// (§2.2) — here it is the substrate's addressing, there it was the
// measurement's.

// tunnelHeaderLen is the length of the tunnel header.
const tunnelHeaderLen = 8

// Gateway is the server side: it terminates tunnel datagrams, runs them
// through the world, and returns the responses.
type Gateway struct {
	world   *World
	vantage Vantage
	conn    *net.UDPConn
	wg      sync.WaitGroup

	mu    sync.Mutex
	clock Time
}

// StartGateway binds a loopback UDP socket and serves the world on it.
func StartGateway(w *World, v Vantage) (*Gateway, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wildnet: gateway listen: %w", err)
	}
	// High-rate scans burst far beyond the default socket buffers.
	conn.SetReadBuffer(8 << 20)
	conn.SetWriteBuffer(8 << 20)
	g := &Gateway{world: w, vantage: v, conn: conn}
	g.wg.Add(1)
	go g.serve()
	return g, nil
}

// Addr returns the gateway's real UDP address.
func (g *Gateway) Addr() *net.UDPAddr { return g.conn.LocalAddr().(*net.UDPAddr) }

// SetTime moves the gateway's simulation clock.
func (g *Gateway) SetTime(t Time) {
	g.mu.Lock()
	g.clock = t
	g.mu.Unlock()
}

func (g *Gateway) time() Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.clock
}

// Close stops the gateway.
func (g *Gateway) Close() error {
	err := g.conn.Close()
	g.wg.Wait()
	return err
}

func (g *Gateway) serve() {
	defer g.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, peer, err := g.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n < tunnelHeaderLen {
			continue
		}
		dst := binary.BigEndian.Uint32(buf[0:])
		dstPort := binary.BigEndian.Uint16(buf[4:])
		srcPort := binary.BigEndian.Uint16(buf[6:])
		if dstPort != 53 {
			continue
		}
		q, err := dnswire.Unpack(buf[tunnelHeaderLen:n])
		if err != nil {
			continue
		}
		resps := g.world.HandleDNS(g.vantage, srcPort, dst, q, g.time())
		limit := g.world.UDPPayloadLimit(dst, q, g.time())
		for _, r := range resps {
			msg, _ := r.Msg.Truncate(limit)
			wire, err := msg.PackBytes()
			if err != nil {
				continue
			}
			out := make([]byte, tunnelHeaderLen+len(wire))
			binary.BigEndian.PutUint32(out[0:], r.Src)
			binary.BigEndian.PutUint16(out[4:], 53)
			binary.BigEndian.PutUint16(out[6:], r.ToPort)
			copy(out[tunnelHeaderLen:], wire)
			if r.DelayMS > 0 {
				// Deliver injected-vs-legit races in order without
				// blocking the read loop.
				resp := out
				delay := time.Duration(r.DelayMS) * time.Millisecond
				to := *peer
				g.wg.Add(1)
				go func() {
					defer g.wg.Done()
					//lint:allow sleepcall gateway delivery delay models the wire, not scan pacing
					time.Sleep(delay / 10) // compressed timescale
					g.conn.WriteToUDP(resp, &to)
				}()
				continue
			}
			g.conn.WriteToUDP(out, peer)
		}
	}
}

// UDPTransport is the client side of the tunnel, implementing Transport
// over a real socket.
type UDPTransport struct {
	conn    *net.UDPConn
	gateway *net.UDPAddr
	recv    func(src netip.Addr, srcPort, dstPort uint16, payload []byte)
	mu      sync.Mutex
	started bool
	wg      sync.WaitGroup
}

// DialGateway connects a transport to a running gateway.
func DialGateway(gw *net.UDPAddr) (*UDPTransport, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wildnet: transport listen: %w", err)
	}
	conn.SetReadBuffer(8 << 20)
	conn.SetWriteBuffer(8 << 20)
	return &UDPTransport{conn: conn, gateway: gw}, nil
}

// SetReceiver implements Transport and starts the read loop.
func (u *UDPTransport) SetReceiver(f func(src netip.Addr, srcPort, dstPort uint16, payload []byte)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.recv = f
	if u.started {
		return
	}
	u.started = true
	u.wg.Add(1)
	go u.readLoop()
}

func (u *UDPTransport) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < tunnelHeaderLen {
			continue
		}
		src := binary.BigEndian.Uint32(buf[0:])
		srcPort := binary.BigEndian.Uint16(buf[4:])
		dstPort := binary.BigEndian.Uint16(buf[6:])
		payload := make([]byte, n-tunnelHeaderLen)
		copy(payload, buf[tunnelHeaderLen:n])
		u.mu.Lock()
		f := u.recv
		u.mu.Unlock()
		if f != nil {
			f(lfsr.U32ToAddr(src), srcPort, dstPort, payload)
		}
	}
}

// Send implements Transport. The kernel write itself is not
// interruptible, so the context is honored at the call edge: a send loop
// that keeps calling Send after cancellation gets ctx.Err() back
// immediately instead of queueing more datagrams.
func (u *UDPTransport) Send(ctx context.Context, dst netip.Addr, dstPort, srcPort uint16, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !dst.Is4() {
		return fmt.Errorf("wildnet: transport is IPv4-only")
	}
	out := make([]byte, tunnelHeaderLen+len(payload))
	binary.BigEndian.PutUint32(out[0:], lfsr.AddrToU32(dst))
	binary.BigEndian.PutUint16(out[4:], dstPort)
	binary.BigEndian.PutUint16(out[6:], srcPort)
	copy(out[tunnelHeaderLen:], payload)
	_, err := u.conn.WriteToUDP(out, u.gateway)
	return err
}

// Close implements Transport.
func (u *UDPTransport) Close() error {
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

// gateFrames is a pooled framing arena for SendBatch: every probe's
// tunnel header + payload is appended into one buffer, and the frame
// slices are cut only after the buffer has stopped growing.
type gateFrames struct {
	buf    []byte
	offs   []int
	frames [][]byte
}

var gateFramePool = sync.Pool{New: func() any {
	return &gateFrames{
		buf:    make([]byte, 0, 256*64),
		offs:   make([]int, 0, 257),
		frames: make([][]byte, 0, 256),
	}
}}

// SendBatch implements BatchSender: the batch is framed into one arena
// and handed to the kernel as a single sendmmsg(2) on platforms that
// have it (one syscall instead of len(probes) sendto calls), with a
// per-datagram fallback everywhere else — including at runtime, if the
// kernel rejects the syscall. Semantics match a Send loop exactly: the
// same tunnel frames leave the socket in the same order.
func (u *UDPTransport) SendBatch(ctx context.Context, probes []Probe) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fr := gateFramePool.Get().(*gateFrames)
	defer gateFramePool.Put(fr)
	fr.buf = fr.buf[:0]
	fr.offs = fr.offs[:0]
	fr.frames = fr.frames[:0]
	for i, p := range probes {
		if !p.Dst.Is4() {
			return i, fmt.Errorf("wildnet: transport is IPv4-only")
		}
		fr.offs = append(fr.offs, len(fr.buf))
		var hdr [tunnelHeaderLen]byte
		binary.BigEndian.PutUint32(hdr[0:], lfsr.AddrToU32(p.Dst))
		binary.BigEndian.PutUint16(hdr[4:], p.DstPort)
		binary.BigEndian.PutUint16(hdr[6:], p.SrcPort)
		fr.buf = append(fr.buf, hdr[:]...)
		fr.buf = append(fr.buf, p.Payload...)
	}
	fr.offs = append(fr.offs, len(fr.buf))
	for i := range probes {
		fr.frames = append(fr.frames, fr.buf[fr.offs[i]:fr.offs[i+1]:fr.offs[i+1]])
	}
	return u.writeBatch(fr.frames)
}

// writeBatchSerial is the portable batch write: one kernel write per
// frame. It is the whole writeBatch on non-sendmmsg platforms and the
// runtime fallback on kernels that refuse the syscall.
func (u *UDPTransport) writeBatchSerial(frames [][]byte) (int, error) {
	for i, f := range frames {
		if _, err := u.conn.WriteToUDP(f, u.gateway); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}
