package wildnet

import (
	"context"
	"net/netip"
	"testing"

	"goingwild/internal/dnswire"
)

// referenceCanAnswer recomputes, from the public World API, whether any
// query toward u could draw a response — the predicate sweepReject must
// never contradict.
func referenceCanAnswer(w *World, u uint32, v Vantage, t Time) bool {
	u = w.Mask(u)
	switch w.infra.roleOf(u) {
	case RoleAuthNS, RoleTrustedDNS:
		return true
	case RoleNone:
	default:
		return false
	}
	if !w.VisibleFrom(u, v, t) {
		return false
	}
	if _, ok := w.ProfileAt(u, t); ok {
		return true
	}
	// The injector can answer for empty Chinese space.
	return w.geo.LookupU32(u).Country == "CN"
}

// TestSweepRejectSoundness walks the entire order-14 space at several
// instants and vantages, checking the fast predicate against the defining
// slow computation: a reject must imply no possible answer, and a
// non-reject of non-Chinese space must imply an answerer exists (the
// predicate is exact there; Chinese space is conservatively kept).
func TestSweepRejectSoundness(t *testing.T) {
	w := testWorld(t, 14)
	for _, tm := range []Time{{}, {Week: 5}, {Week: 20, Day: 3, Hour: 7}, {Week: 55}} {
		for _, v := range []Vantage{VantagePrimary, VantageSecondary} {
			for u := uint32(0); u < uint32(w.SpaceSize()); u++ {
				reject := w.sweepReject(u, v, tm)
				can := referenceCanAnswer(w, u, v, tm)
				if reject && can {
					t.Fatalf("week %d vantage %d: %#x fast-rejected but can answer", tm.Week, v, u)
				}
				if !reject && !can && w.geo.LookupU32(u).Country != "CN" {
					t.Fatalf("week %d vantage %d: %#x not rejected yet cannot answer", tm.Week, v, u)
				}
			}
		}
	}
}

// TestSweepRejectMatchesHandler fires a real sweep-shaped query at every
// fast-rejected address of a small world and demands silence from the
// full handler, plus a second opinion via Send on a transport with the
// fast path disabled by construction (we call process directly).
func TestSweepRejectMatchesHandler(t *testing.T) {
	w := testWorld(t, 14)
	tr := NewMemTransport(w, VantagePrimary)
	defer tr.Close()
	delivered := 0
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) { delivered++ })
	ctx := context.Background()
	now := Time{Week: 9}
	tr.SetTime(now)
	checked := 0
	for u := uint32(0); u < uint32(w.SpaceSize()); u += 3 {
		if !w.sweepReject(u, VantagePrimary, now) {
			continue
		}
		q := dnswire.NewQuery(uint16(u), "r0af3.00112233.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
		if resps := w.HandleDNS(VantagePrimary, 33000, u, q, now); len(resps) != 0 {
			t.Fatalf("%#x fast-rejected but HandleDNS answered", u)
		}
		// Bypass the fast path: the full transport pipeline must agree.
		payload, err := q.PackBytes()
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.process(ctx, u, 53, 33000, payload, now); err != nil {
			t.Fatal(err)
		}
		checked++
	}
	if delivered != 0 {
		t.Fatalf("full pipeline delivered %d responses for fast-rejected targets", delivered)
	}
	if checked < 1000 {
		t.Fatalf("only %d rejected targets in an order-14 world; predicate suspiciously weak", checked)
	}
}

// TestCNFilterMatchesPipeline drives empty-Chinese-space addresses
// (classCNOnly: no resolver, but the injector might react) through Send —
// which decides with the alloc-free question peek — and through the
// bypassed full pipeline, across GFW-listed, unlisted, and non-A
// questions, and requires byte-identical deliveries.
func TestCNFilterMatchesPipeline(t *testing.T) {
	w := testWorld(t, 14)
	now := Time{Week: 3}
	bc := w.blockCache(now.Week)
	queries := []*dnswire.Message{
		dnswire.NewQuery(0x11, "facebook.com", dnswire.TypeA, dnswire.ClassIN),
		dnswire.NewQuery(0x12, "FaceBook.COM", dnswire.TypeA, dnswire.ClassIN),
		dnswire.NewQuery(0x13, "facebook.com", dnswire.TypeTXT, dnswire.ClassIN),
		dnswire.NewQuery(0x14, "r0af3.00112233.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN),
		dnswire.NewQuery(0x15, "example.org", dnswire.TypeA, dnswire.ClassIN),
	}
	run := func(bypass bool) []string {
		tr := NewMemTransport(w, VantagePrimary)
		defer tr.Close()
		tr.SetTime(now)
		var got []string
		tr.SetReceiver(func(src netip.Addr, sp, dp uint16, payload []byte) {
			got = append(got, src.String()+"|"+string(payload))
		})
		ctx := context.Background()
		cnSeen := 0
		for u := uint32(0); u < uint32(w.SpaceSize()); u += 7 {
			if w.sweepClassify(u, VantagePrimary, now, bc) != classCNOnly {
				continue
			}
			cnSeen++
			for _, q := range queries {
				payload, err := q.PackBytes()
				if err != nil {
					t.Fatal(err)
				}
				if bypass {
					if err := tr.process(ctx, u, 53, 34567, payload, now); err != nil {
						t.Fatal(err)
					}
				} else if err := tr.Send(ctx, w.Addr(u), 53, 34567, payload); err != nil {
					t.Fatal(err)
				}
			}
		}
		if cnSeen < 100 {
			t.Fatalf("only %d classCNOnly addresses sampled; world suspiciously un-Chinese", cnSeen)
		}
		return got
	}
	fast := run(false)
	full := run(true)
	if len(fast) != len(full) {
		t.Fatalf("deliveries differ: %d via Send vs %d via full pipeline", len(fast), len(full))
	}
	for i := range fast {
		if fast[i] != full[i] {
			t.Fatalf("delivery %d differs:\n fast: %s\n full: %s", i, fast[i], full[i])
		}
	}
	if len(fast) == 0 {
		t.Fatal("no injector deliveries at all; GFW queries should have drawn answers")
	}
}

// TestSendBatchMatchesSend sends the same probe set through SendBatch and
// through per-probe Send against two equal worlds and requires identical
// deliveries, byte for byte and in order.
func TestSendBatchMatchesSend(t *testing.T) {
	type delivery struct {
		src     netip.Addr
		sp, dp  uint16
		payload string
	}
	run := func(batched bool) []delivery {
		w := testWorld(t, 14)
		tr := NewMemTransport(w, VantagePrimary)
		defer tr.Close()
		var got []delivery
		tr.SetReceiver(func(src netip.Addr, sp, dp uint16, payload []byte) {
			got = append(got, delivery{src, sp, dp, string(payload)})
		})
		ctx := context.Background()
		var batch []Probe
		payloads := make([][]byte, 0, 4096)
		for u := uint32(1); u <= 4096; u++ {
			q := dnswire.NewQuery(uint16(u), "r1.c0a80101.scan.dnsstudy.example.edu", dnswire.TypeA, dnswire.ClassIN)
			payload, err := q.PackBytes()
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, payload)
			batch = append(batch, Probe{Dst: w.Addr(u), DstPort: 53, SrcPort: 33000, Payload: payload})
		}
		if batched {
			n, err := tr.SendBatch(ctx, batch)
			if err != nil || n != len(batch) {
				t.Fatalf("SendBatch = %d, %v", n, err)
			}
		} else {
			for i, p := range batch {
				if err := tr.Send(ctx, p.Dst, p.DstPort, p.SrcPort, payloads[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return got
	}
	single := run(false)
	batch := run(true)
	if len(single) != len(batch) {
		t.Fatalf("deliveries differ: %d single vs %d batched", len(single), len(batch))
	}
	for i := range single {
		if single[i] != batch[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, single[i], batch[i])
		}
	}
	if len(single) == 0 {
		t.Fatal("no deliveries at all; world suspiciously empty")
	}
}
