//go:build !linux || (!amd64 && !arm64)

package wildnet

// writeBatch on platforms without sendmmsg(2) support: one write per
// frame, same wire behavior, just more syscalls.
func (u *UDPTransport) writeBatch(frames [][]byte) (int, error) {
	return u.writeBatchSerial(frames)
}
