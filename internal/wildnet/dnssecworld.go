package wildnet

import (
	"crypto/ed25519"
	"sync"

	"goingwild/internal/dnssec"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/prand"
)

// DNSSEC deployment in the world (§5): as of the study period, global
// coverage was marginal (<0.6% of .net domains), so only a handful of
// scan-list zones are signed — including one the Chinese injector reacts
// to, which is exactly the configuration the paper's discussion section
// reasons about.
var signedZoneList = []string{
	domains.GroundTruth,
	"wikileaks.org", // signed AND injected: the §5 race scenario
	"paypal.com",
	"wikipedia.org",
	"accounts.google.com",
}

// dnssecState lazily holds zone keys and signature caches.
type dnssecState struct {
	mu   sync.Mutex
	once sync.Once
	keys map[string]*dnssec.ZoneKey
	sigs map[string]dnswire.RRSIG // cache key: zone + packed answer identity
}

func (w *World) dnssecStateOf() *dnssecState {
	w.dnssec.once.Do(func() {
		w.dnssec.keys = map[string]*dnssec.ZoneKey{}
		w.dnssec.sigs = map[string]dnswire.RRSIG{}
	})
	return &w.dnssec
}

// SignedZone reports whether a name belongs to a DNSSEC-signed zone, and
// returns the zone apex.
func (w *World) SignedZone(name string) (string, bool) {
	cn := dnswire.CanonicalName(name)
	for _, z := range signedZoneList {
		if cn == z {
			return z, true
		}
	}
	// A ~1% tail of other zones is signed, seeded per world.
	if _, listed := domains.ByName(cn); listed {
		if prand.UnitOf(w.cfg.Seed, 0xD5EC, hashString(cn)) < 0.01 {
			return cn, true
		}
	}
	return "", false
}

// ZoneKeyOf returns (building if necessary) the signing key of a zone.
func (w *World) ZoneKeyOf(zone string) *dnssec.ZoneKey {
	st := w.dnssecStateOf()
	st.mu.Lock()
	defer st.mu.Unlock()
	if k, ok := st.keys[zone]; ok {
		return k
	}
	k := dnssec.NewZoneKey(zone, w.cfg.Seed)
	st.keys[zone] = k
	return k
}

// ZonePublicKey exposes the public key the client-side validator fetches
// via a DNSKEY lookup.
func (w *World) ZonePublicKey(zone string) (ed25519.PublicKey, bool) {
	if _, signed := w.SignedZone(zone); !signed {
		return nil, false
	}
	return w.ZoneKeyOf(dnswire.CanonicalName(zone)).Public, true
}

// signAnswer appends an RRSIG over the answer RRset when the queried
// zone is signed. Signatures are cached per (zone, answer identity).
func (w *World) signAnswer(m *dnswire.Message, qname string) {
	zone, signed := w.SignedZone(qname)
	if !signed || len(m.Answers) == 0 {
		return
	}
	key := w.ZoneKeyOf(zone)
	cacheKey := zone + "|" + answerIdentity(m)
	st := w.dnssecStateOf()
	st.mu.Lock()
	sig, ok := st.sigs[cacheKey]
	st.mu.Unlock()
	if !ok {
		sig = key.Sign(qname, dnswire.ClassIN, answerTTL, m.Answers)
		st.mu.Lock()
		st.sigs[cacheKey] = sig
		st.mu.Unlock()
	}
	m.AddAnswer(qname, dnswire.ClassIN, answerTTL, sig)
}

func answerIdentity(m *dnswire.Message) string {
	var b []byte
	for _, rr := range m.Answers {
		if a, ok := rr.Data.(dnswire.A); ok {
			v := a.Addr.As4()
			b = append(b, v[:]...)
		}
	}
	return string(b)
}

// answerDNSKEY serves the zone's public key record.
func (w *World) answerDNSKEY(q *dnswire.Message, qname string) *dnswire.Message {
	zone, signed := w.SignedZone(qname)
	if !signed {
		return dnswire.NewResponse(q, dnswire.RCodeNoError)
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, dnswire.ClassIN, 3600, w.ZoneKeyOf(zone).DNSKEY())
	return resp
}
