package wildnet

import (
	"goingwild/internal/dnswire"
	"goingwild/internal/prand"
)

// Closed resolvers (§2.1): DNS servers that answer only clients from a
// trusted address range — invisible to Internet-wide scans, but §5 notes
// "there is no reason to assume that closed resolvers do not likewise
// manipulate resolutions", and §6 points at Netalyzr-style in-network
// measurements as the way to see them. Every network block of the world
// operates one closed ISP resolver serving its own range.

// ClosedResolverOf returns the address of the closed resolver serving a
// client address: the ISP resolver at the base of the client's network
// block.
func (w *World) ClosedResolverOf(client uint32) uint32 {
	client = w.Mask(client)
	block := uint32(w.geo.BlockOf(client))
	blockBits := w.cfg.Order - blockCountBits(w.cfg.Order)
	return w.Mask(block<<blockBits | 2)
}

// blockCountBits mirrors the geodb block layout.
func blockCountBits(order uint) uint {
	if order < 16 {
		return order - 4
	}
	return 12
}

// closedProfile derives the behavior of a closed resolver: the same
// distribution as the open population minus the classes that require
// openness, so the in-network study observes comparable manipulation
// (notably NXDOMAIN monetization, Weaver et al.'s focus).
func (w *World) closedProfile(resolver uint32) Profile {
	id := prand.Hash(w.cfg.Seed, 0xC105ED, uint64(resolver))
	loc := w.geo.LookupU32(resolver)
	p := Profile{Identity: id, Country: loc.Country, RCode: RCNoError,
		SoftwareIdx: -1, HiddenIdx: -1, DeviceIdx: -1}
	p.Manip = drawManip(id)
	if loc.Country == "CN" {
		p.GFWDouble = prand.UnitOf(id, facetGFWDouble) < 0.024
	}
	return p
}

// HandleClientDNS processes a query a *client inside the network* sends
// to its ISP's closed resolver. Queries from outside the resolver's
// block are refused — which is what makes the resolver closed.
func (w *World) HandleClientDNS(client uint32, q *dnswire.Message, t Time) []QueryResponse {
	client = w.Mask(client)
	resolver := w.ClosedResolverOf(client)
	if len(q.Questions) == 0 {
		return nil
	}
	if w.geo.BlockOf(client) != w.geo.BlockOf(resolver) {
		return []QueryResponse{{Src: resolver, ToPort: 53, Msg: dnswire.NewResponse(q, dnswire.RCodeRefused)}}
	}
	p := w.closedProfile(resolver)
	qname := dnswire.CanonicalName(q.Questions[0].Name)
	if q.Questions[0].Type != dnswire.TypeA {
		return []QueryResponse{{Src: resolver, ToPort: 53, Msg: dnswire.NewResponse(q, dnswire.RCodeNotImp)}}
	}
	return w.answerA(&p, q, qname, resolver, resolver, 53, 3, t)
}
