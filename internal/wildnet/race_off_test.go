//go:build !race

package wildnet

const raceEnabled = false
