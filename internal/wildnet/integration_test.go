package wildnet

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
)

// TestUDPGatewayDomainScanParity drives a small domain scan through real
// UDP sockets and checks it observes the same answers as the in-memory
// transport — the two transports must be behaviorally identical.
func TestUDPGatewayDomainScanParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	w := testWorld(t, 16)
	// Collect a handful of resolvers with distinct behaviors.
	var targets []uint32
	var wanted = []Manip{ManipHonest, ManipStaticIP, ManipNXMonetize}
	for _, m := range wanted {
		for u := uint32(0); u < 1<<16; u++ {
			p, ok := w.ProfileAt(u, At(0))
			if ok && p.RCode == RCNoError && p.Manip == m && !p.MisSourced {
				targets = append(targets, u)
				break
			}
		}
	}
	if len(targets) < 2 {
		t.Skip("not enough distinct resolvers at this order")
	}

	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	udp, err := DialGateway(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	collect := func(tr interface {
		Send(ctx context.Context, dst netip.Addr, dstPort, srcPort uint16, payload []byte) error
		SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte))
	}, wait time.Duration) map[uint32][]uint32 {
		out := map[uint32][]uint32{}
		var mu sync.Mutex
		tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
			m, err := dnswire.Unpack(payload)
			if err != nil || !m.Header.QR {
				return
			}
			var addrs []uint32
			for _, a := range m.AnswerAddrs() {
				b := a.As4()
				addrs = append(addrs, uint32(b[0])<<24|uint32(b[1])<<16|uint32(b[2])<<8|uint32(b[3]))
			}
			mu.Lock()
			out[uint32(m.Header.ID)] = addrs
			mu.Unlock()
		})
		for round := 0; round < 3; round++ { // ride over the 0.2% loss model
			for i, u := range targets {
				q := dnswire.NewQuery(uint16(i), domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
				wire, _ := q.PackBytes()
				tr.Send(context.Background(), U32ToAddrExported(u), 53, 42000, wire)
			}
		}
		time.Sleep(wait)
		mu.Lock()
		defer mu.Unlock()
		cp := map[uint32][]uint32{}
		for k, v := range out {
			cp[k] = v
		}
		return cp
	}

	mem := NewMemTransport(w, VantagePrimary)
	defer mem.Close()
	memOut := collect(mem, 0)
	udpOut := collect(udp, 500*time.Millisecond)

	for id, addrs := range memOut {
		got, ok := udpOut[id]
		if !ok {
			t.Errorf("probe %d missing over UDP", id)
			continue
		}
		if len(got) != len(addrs) {
			t.Errorf("probe %d answers differ: mem=%v udp=%v", id, addrs, got)
			continue
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Errorf("probe %d answer %d: mem=%d udp=%d", id, i, addrs[i], got[i])
			}
		}
	}
}

// U32ToAddrExported mirrors lfsr.U32ToAddr without the import cycle risk
// in this test file.
func U32ToAddrExported(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}
