package wildnet

import (
	"math"

	"goingwild/internal/devices"
	"goingwild/internal/geodb"
	"goingwild/internal/prand"
	"goingwild/internal/software"
)

// RCodeClass buckets resolvers by the status code of their scan responses
// (Figure 1 tracks NOERROR, REFUSED, and SERVFAIL populations).
type RCodeClass uint8

// Response-code classes.
const (
	RCNoError RCodeClass = iota
	RCRefused
	RCServFail
)

// Manip is a resolver's resolution-manipulation profile (§3.1/§4). The
// overwhelming majority is honest; the rest implements the behaviors the
// classification pipeline must recover.
type Manip uint8

// Manipulation profiles.
const (
	ManipHonest       Manip = iota
	ManipProtect            // DNS protection: blocks malware domains
	ManipEmptyAll           // NOERROR with empty answer section for everything
	ManipNXMonetize         // redirects NXDOMAIN traffic (error monetization)
	ManipStaticIP           // one static IP for every domain
	ManipSelfIP             // its own IP for every domain (router/camera logins)
	ManipCaptiveLAN         // LAN or same-/24 addresses (captive portals)
	ManipWildPark           // parking IPs for everything
	ManipStaleMis           // stale/misconfigured: error-page or dead-CDN IPs
	ManipNSOnly             // answers with NS records only, denying recursion
	ManipMailRedir          // MX hosts redirected to listening mail servers
	ManipAdRedirect         // ad domains to ad-injection hosts (281 resolvers)
	ManipAdBlock            // ad domains to empty placeholders (14 resolvers)
	ManipAdFakeSearch       // search pages with extra ad banners (7 resolvers)
	ManipProxyTLS           // transparent proxies with valid certs (99 resolvers)
	ManipProxyPlain         // HTTP-only transparent proxies (10,179 resolvers)
	ManipPhishPayPal        // PayPal phishing (176 resolvers)
	ManipPhishBankBR        // Italian bank phish, Brazilian host (285 resolvers)
	ManipPhishBankRU        // Italian bank phish, Russian host (46 resolvers)
	ManipPhishOther         // other domain-specific phishing (≈850 resolvers)
	ManipMalware            // fake Flash/Java update pages (228 resolvers)
)

// ChaosClass buckets resolvers by their CHAOS version-query behavior
// (§2.4: 42.7% error, 4.6% empty, 18.8% hidden string, 33.9% versioned).
type ChaosClass uint8

// CHAOS response classes.
const (
	ChaosError ChaosClass = iota
	ChaosEmptyVersion
	ChaosHidden
	ChaosVersioned
)

// UtilClass buckets resolvers by cache-snooping behavior (§2.6).
type UtilClass uint8

// Utilization classes.
const (
	UtilEmptyNS    UtilClass = iota // empty responses instead of NS records (7.3%)
	UtilSingleStop                  // one response per TLD, then silence (3.3%)
	UtilStaticTTL                   // static or zero TTLs (4.0%)
	UtilInUseFast                   // re-cached within 5s of expiry (38.7%)
	UtilInUseSlow                   // re-cached eventually (22.9%)
	UtilDecreasing                  // decreasing TTL, no expiry observed (4.0%)
	UtilResetting                   // TTL reset ahead of expiry (19.6%)
)

// Profile is the full behavioral identity of a resolver at one lease.
type Profile struct {
	Identity   uint64
	RCode      RCodeClass
	Manip      Manip
	MisSourced bool
	Chaos      ChaosClass
	// SoftwareIdx indexes software.Catalog when Chaos == ChaosVersioned;
	// HiddenIdx indexes software.HiddenStrings when Chaos == ChaosHidden.
	SoftwareIdx int
	HiddenIdx   int
	// DeviceIdx indexes devices.Catalog, or -1 when the host exposes no
	// TCP services (73.7% of resolvers).
	DeviceIdx int
	Util      UtilClass
	GFWDouble bool
	Country   string
}

// Manipulation profile probabilities (share of NOERROR resolvers).
const (
	pProtect    = 0.0100
	pEmptyAll   = 0.0300
	pNXMonetize = 0.1120
	pStaticIP   = 0.0036
	pSelfIP     = 0.0012
	pCaptiveLAN = 0.0024
	pWildPark   = 0.0045
	pStaleMis   = 0.0105
	pNSOnly     = 0.0018
	pMailRedir  = 0.0080
)

// pTCPResponsive is the share of resolvers exposing at least one TCP
// service usable for device fingerprinting (§2.4: 26.3%).
const pTCPResponsive = 0.263

// pMisSourced is the share of resolvers whose responses arrive from a
// different source address (multi-homed hosts and DNS proxies, §2.2:
// 630k–750k of ≈25M per week).
const pMisSourced = 0.027

// pRefusedBase is the REFUSED share of the responder population at week
// 0. Figure 1 shows the REFUSED population staying flat while the total
// declines, so the share grows inversely with the world decline.
const pRefusedBase = 0.080

// servFailShare returns the week's SERVFAIL share; the population
// fluctuates between ≈0.63M and ≈2.14M of ≈31M responders.
func servFailShare(week int) float64 {
	return 0.044 + 0.024*math.Sin(float64(week)*0.55+1.3)
}

// ProfileAt derives the full profile of the resolver at u. ok is false
// when no resolver answers at u at time t.
func (w *World) ProfileAt(u uint32, t Time) (Profile, bool) {
	u = w.Mask(u)
	station, isStation := w.stations[u]
	if !isStation && !w.ResolverAt(u, t) {
		return Profile{}, false
	}
	id := w.identity(u, t)
	if isStation {
		id = prand.Hash(w.cfg.Seed, uint64(u)) // stations never churn
	}
	loc := w.geo.LookupU32(u)
	p := Profile{Identity: id, Country: loc.Country, SoftwareIdx: -1, HiddenIdx: -1, DeviceIdx: -1}

	// Response-code class. The REFUSED share grows as the population
	// declines so its absolute count stays flat (Figure 1).
	r := prand.UnitOf(id, facetRCode)
	pRef := pRefusedBase / geodb.WorldDeclineAt(t.Week)
	if pRef > 0.15 {
		pRef = 0.15
	}
	sf := servFailShare(t.Week)
	switch {
	case isStation:
		p.RCode = RCNoError
	case r < pRef:
		p.RCode = RCRefused
	case r < pRef+sf:
		p.RCode = RCServFail
	default:
		p.RCode = RCNoError
	}

	// Manipulation profile.
	if isStation {
		p.Manip = station
	} else if p.RCode == RCNoError {
		p.Manip = drawManip(id)
	}

	p.MisSourced = prand.UnitOf(id, facetMisSourced) < pMisSourced
	if loc.Country == "CN" {
		p.GFWDouble = prand.UnitOf(id, facetGFWDouble) < 0.024
	}

	// CHAOS class and software.
	c := prand.UnitOf(id, facetSoftware)
	switch {
	case c < 0.427:
		p.Chaos = ChaosError
	case c < 0.427+0.046:
		p.Chaos = ChaosEmptyVersion
	case c < 0.427+0.046+0.188:
		p.Chaos = ChaosHidden
		p.HiddenIdx = prand.IntN(prand.Hash(id, facetVersionHide), len(software.HiddenStrings))
	default:
		p.Chaos = ChaosVersioned
		p.SoftwareIdx = pickWeighted(prand.UnitOf(id, facetVersionHide, 1), softwareWeights)
	}

	// Device (TCP services).
	if prand.UnitOf(id, facetTCPSvc) < pTCPResponsive {
		p.DeviceIdx = pickWeighted(prand.UnitOf(id, facetDevice), deviceWeights)
	}

	// Utilization class.
	uu := prand.UnitOf(id, facetUtilization)
	switch {
	case uu < 0.073:
		p.Util = UtilEmptyNS
	case uu < 0.073+0.033:
		p.Util = UtilSingleStop
	case uu < 0.073+0.033+0.040:
		p.Util = UtilStaticTTL
	case uu < 0.073+0.033+0.040+0.387:
		p.Util = UtilInUseFast
	case uu < 0.073+0.033+0.040+0.387+0.229:
		p.Util = UtilInUseSlow
	case uu < 0.073+0.033+0.040+0.387+0.229+0.040:
		p.Util = UtilDecreasing
	default:
		p.Util = UtilResetting
	}
	return p, true
}

// drawManip assigns the common (density-scaled) manipulation profiles.
// Rare case-study behaviors live on fixed stations instead.
func drawManip(id uint64) Manip {
	v := prand.UnitOf(id, facetProfile)
	acc := 0.0
	for _, e := range manipTable {
		acc += e.p
		if v < acc {
			return e.m
		}
	}
	return ManipHonest
}

var manipTable = []struct {
	m Manip
	p float64
}{
	{ManipProtect, pProtect},
	{ManipEmptyAll, pEmptyAll},
	{ManipNXMonetize, pNXMonetize},
	{ManipStaticIP, pStaticIP},
	{ManipSelfIP, pSelfIP},
	{ManipCaptiveLAN, pCaptiveLAN},
	{ManipWildPark, pWildPark},
	{ManipStaleMis, pStaleMis},
	{ManipNSOnly, pNSOnly},
	{ManipMailRedir, pMailRedir},
}

var softwareWeights = func() []float64 {
	out := make([]float64, len(software.Catalog))
	for i, e := range software.Catalog {
		out[i] = e.Weight
	}
	return out
}()

var deviceWeights = func() []float64 {
	out := make([]float64, len(devices.Catalog))
	for i, m := range devices.Catalog {
		out[i] = m.Weight
	}
	return out
}()

func pickWeighted(u float64, weights []float64) int {
	return prand.Pick(u, weights)
}

// rareStation describes one fixed-population behavior class.
type rareStation struct {
	manip Manip
	paper int // resolver count at paper scale
}

var rareStations = []rareStation{
	{ManipAdRedirect, 281},
	{ManipAdBlock, 14},
	{ManipAdFakeSearch, 7},
	{ManipProxyTLS, 99},
	{ManipProxyPlain, 10179},
	{ManipPhishPayPal, 176},
	{ManipPhishBankBR, 285},
	{ManipPhishBankRU, 46},
	{ManipPhishOther, 850},
	{ManipMalware, 228},
}

// minStationCount keeps rare behaviors measurable in scaled-down worlds.
const minStationCount = 5

// buildStations places the rare-behavior resolvers at fixed addresses.
func (w *World) buildStations() map[uint32]Manip {
	out := make(map[uint32]Manip)
	for si, rs := range rareStations {
		n := int(float64(rs.paper)/w.scale + 0.5)
		if n < minStationCount {
			n = minStationCount
		}
		// Keep relative magnitudes visible even in tiny worlds: the
		// large classes (e.g. the 10,179 HTTP-only proxy resolvers)
		// stay clearly bigger than the small ones.
		if rs.paper >= 1000 && n < 2*minStationCount {
			n = 2 * minStationCount
		}
		// The two bank phishing hosts are single IPs; their resolver
		// populations sit in specific countries (handled by content,
		// not placement).
		for i, placed := 0, 0; placed < n; i++ {
			u := w.Mask(uint32(prand.Hash(w.cfg.Seed, 0x57A710, uint64(si), uint64(i))))
			if w.infra.roleOf(u) != RoleNone {
				continue
			}
			if _, taken := out[u]; taken {
				continue
			}
			out[u] = rs.manip
			placed++
		}
	}
	return out
}

// StationCount returns how many rare-behavior resolvers of a class exist
// in this world (for report extrapolation).
func (w *World) StationCount(m Manip) int {
	n := 0
	for _, v := range w.stations {
		if v == m {
			n++
		}
	}
	return n
}
