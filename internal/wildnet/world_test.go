package wildnet

import (
	"math"
	"testing"

	"goingwild/internal/geodb"
)

func testWorld(t testing.TB, order uint) *World {
	t.Helper()
	w, err := NewWorld(DefaultConfig(order))
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Order: 8, Seed: 1, BaseDensity: 0.01},
		{Order: 33, Seed: 1, BaseDensity: 0.01},
		{Order: 20, Seed: 1, BaseDensity: 0},
		{Order: 20, Seed: 1, BaseDensity: 0.9},
	} {
		if _, err := NewWorld(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPopulationDensityNearTarget(t *testing.T) {
	w := testWorld(t, 18)
	var count int
	for u := uint32(0); u < 1<<18; u++ {
		if w.ResolverAt(u, At(0)) {
			count++
		}
	}
	want := w.cfg.BaseDensity * float64(w.SpaceSize())
	if math.Abs(float64(count)-want) > want*0.25 {
		t.Errorf("week-0 population = %d, want ≈ %.0f", count, want)
	}
}

func TestPopulationDeclines(t *testing.T) {
	w := testWorld(t, 18)
	count := func(week int) int {
		n := 0
		for u := uint32(0); u < 1<<18; u += 3 {
			if w.ResolverAt(u, At(week)) {
				n++
			}
		}
		return n
	}
	w0, w55 := count(0), count(55)
	ratio := float64(w55) / float64(w0)
	if ratio < 0.60 || ratio > 0.85 {
		t.Errorf("population ratio week55/week0 = %.2f, want ≈ 0.72", ratio)
	}
}

func TestChurnCohortSurvival(t *testing.T) {
	w := testWorld(t, 18)
	var cohort []uint32
	for u := uint32(0); u < 1<<18; u++ {
		if w.ResolverAt(u, At(0)) {
			cohort = append(cohort, u)
		}
	}
	if len(cohort) < 500 {
		t.Fatalf("cohort too small: %d", len(cohort))
	}
	surviving := func(tt Time) float64 {
		n := 0
		for _, u := range cohort {
			if w.ResolverAt(u, tt) {
				n++
			}
		}
		return float64(n) / float64(len(cohort))
	}
	// >40% disappear within the first day (§2.5).
	day1 := surviving(Time{Week: 0, Day: 1})
	if day1 > 0.62 || day1 < 0.45 {
		t.Errorf("day-1 survival = %.2f, want ≈ 0.55 (>40%% gone)", day1)
	}
	// 52.2% disappear within one week.
	week1 := surviving(At(1))
	if week1 < 0.40 || week1 > 0.56 {
		t.Errorf("week-1 survival = %.2f, want ≈ 0.48", week1)
	}
	// ≈4% remain after 55 weeks.
	week55 := surviving(At(55))
	if week55 < 0.015 || week55 > 0.09 {
		t.Errorf("week-55 survival = %.3f, want ≈ 0.04", week55)
	}
	// Monotone-ish decline: later scans see fewer survivors.
	if !(day1 >= week1 && week1 >= week55) {
		t.Errorf("survival not declining: %v %v %v", day1, week1, week55)
	}
}

func TestDeterminism(t *testing.T) {
	a := testWorld(t, 16)
	b := testWorld(t, 16)
	for u := uint32(0); u < 1<<16; u += 7 {
		if a.ResolverAt(u, At(3)) != b.ResolverAt(u, At(3)) {
			t.Fatalf("existence differs at %d", u)
		}
		pa, oka := a.ProfileAt(u, At(3))
		pb, okb := b.ProfileAt(u, At(3))
		if oka != okb || pa != pb {
			t.Fatalf("profile differs at %d", u)
		}
	}
}

func TestProfileMarginals(t *testing.T) {
	w := testWorld(t, 18)
	var total, refused, servfail, tcp, versioned, chaosErr, missrc int
	for u := uint32(0); u < 1<<18; u++ {
		p, ok := w.ProfileAt(u, At(0))
		if !ok {
			continue
		}
		total++
		switch p.RCode {
		case RCRefused:
			refused++
		case RCServFail:
			servfail++
		}
		if p.DeviceIdx >= 0 {
			tcp++
		}
		switch p.Chaos {
		case ChaosVersioned:
			versioned++
		case ChaosError:
			chaosErr++
		}
		if p.MisSourced {
			missrc++
		}
	}
	if total < 1000 {
		t.Fatalf("population too small: %d", total)
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"REFUSED", float64(refused) / float64(total), 0.080, 0.02},
		{"TCP-responsive", float64(tcp) / float64(total), 0.263, 0.03},
		{"CHAOS versioned", float64(versioned) / float64(total), 0.339, 0.03},
		{"CHAOS error", float64(chaosErr) / float64(total), 0.427, 0.03},
		{"mis-sourced", float64(missrc) / float64(total), 0.027, 0.01},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s share = %.3f, want ≈ %.3f", c.name, c.got, c.want)
		}
	}
	sf := float64(servfail) / float64(total)
	if sf < 0.01 || sf > 0.08 {
		t.Errorf("SERVFAIL share = %.3f, want within the 2–7%% wobble band", sf)
	}
}

func TestSERVFAILFluctuates(t *testing.T) {
	lo, hi := 1.0, 0.0
	for week := 0; week < 55; week++ {
		s := servFailShare(week)
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi/lo < 2.0 {
		t.Errorf("SERVFAIL wobble %.3f–%.3f too flat (paper: 0.63M–2.14M)", lo, hi)
	}
	if lo <= 0 {
		t.Errorf("SERVFAIL share went non-positive: %f", lo)
	}
}

func TestStationsAlwaysResolve(t *testing.T) {
	w := testWorld(t, 18)
	if len(w.stations) == 0 {
		t.Fatal("no rare-behavior stations")
	}
	for u, m := range w.stations {
		if !w.ResolverAt(u, At(50)) {
			t.Errorf("station %d (%d) not resolving", u, m)
		}
		p, ok := w.ProfileAt(u, At(50))
		if !ok || p.Manip != m {
			t.Errorf("station %d profile = %+v, want manip %d", u, p, m)
		}
	}
	// Proxy-plain dominates the rare population, as in §4.3.
	if w.StationCount(ManipProxyPlain) <= w.StationCount(ManipProxyTLS) {
		t.Error("proxy-plain stations not more numerous than proxy-TLS")
	}
}

func TestFatedNetworksDisappearFromPrimaryVantage(t *testing.T) {
	w := testWorld(t, 18)
	var as *geodb.AS
	for i := range w.geo.ASes() {
		if w.geo.ASes()[i].Fate == geodb.FateBlocksScanner {
			as = &w.geo.ASes()[i]
			break
		}
	}
	if as == nil {
		t.Fatal("no blocking AS found")
	}
	// Find an address in that AS hosting a resolver before the fate week.
	var target uint32
	found := false
	for u := uint32(0); u < 1<<18; u++ {
		loc := w.geo.LookupU32(u)
		if loc.AS.ASN == as.ASN && w.ResolverAt(u, At(0)) && w.stabilityOf(u) == StabilityStatic {
			target, found = u, true
			break
		}
	}
	if !found {
		t.Skip("no static resolver in the fated AS at this order/seed")
	}
	after := At(as.FateWeek + 1)
	if w.VisibleFrom(target, VantagePrimary, after) {
		t.Error("fated network still visible from primary vantage")
	}
	if !w.VisibleFrom(target, VantageSecondary, after) {
		t.Error("fated network invisible from secondary vantage too")
	}
}

func TestInfraRolesDisjointAndComplete(t *testing.T) {
	w := testWorld(t, 16)
	base := w.infra.base
	prev := RoleNone
	for u := base; u != 0; u++ { // wraps at 2^32 but masked below
		if w.Mask(u) < base {
			break
		}
		role, _ := w.RoleOf(u)
		if role == RoleNone {
			t.Fatalf("infra address %d has no role (prev %v)", u, prev)
		}
		prev = role
		if u == base+w.infra.total-1 {
			break
		}
	}
	if got, _ := w.RoleOf(base - 1); got != RoleNone {
		t.Errorf("address below infra base got role %v", got)
	}
}

func TestCensorPageAllocation(t *testing.T) {
	w := testWorld(t, 16)
	n := w.ActiveCensorPages()
	if n < 200 || n > 400 {
		t.Errorf("active censor pages = %d, want ≈ 299", n)
	}
	for _, cc := range []string{"CN", "IR", "ID", "TR"} {
		a := w.CensorPageAddr(cc, 0)
		if a == 0 {
			t.Errorf("no landing page for %s", cc)
		}
		role, slot := w.RoleOf(a)
		if role != RoleCensorPage {
			t.Errorf("landing page for %s has role %v", cc, role)
		}
		if got := CensorPageCountry(slot); got != cc {
			t.Errorf("landing slot %d maps back to %s, want %s", slot, got, cc)
		}
	}
	if a := w.CensorPageAddr("US", 0); a != 0 {
		t.Error("non-censoring country got a landing page")
	}
}

func TestRareStationCountsScale(t *testing.T) {
	w := testWorld(t, 16)
	for _, rs := range rareStations {
		n := w.StationCount(rs.manip)
		if n < minStationCount {
			t.Errorf("station class %d has %d members, want ≥ %d", rs.manip, n, minStationCount)
		}
	}
}
