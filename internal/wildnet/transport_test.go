package wildnet

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
)

func TestMemTransportRoundTrip(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && !p.MisSourced
	})
	tr := NewMemTransport(w, VantagePrimary)
	defer tr.Close()
	var got []*dnswire.Message
	tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
		m, err := dnswire.Unpack(payload)
		if err != nil {
			t.Errorf("bad response: %v", err)
			return
		}
		got = append(got, m)
	})
	q := dnswire.NewQuery(99, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	wire, _ := q.PackBytes()
	// Loss is 0.2% and drawn per (packet, simulated minute), so a bare
	// retransmission shares the original's fate; advance the clock a
	// minute between attempts to redraw.
	for i := 0; i < 10 && len(got) == 0; i++ {
		tr.SetTime(Time{Minute: i})
		if err := tr.Send(context.Background(), w.Addr(u), 53, 40000, wire); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) == 0 {
		t.Fatal("no response through mem transport")
	}
	if got[0].Header.ID != 99 || len(got[0].Answers) == 0 {
		t.Errorf("response = %v", got[0])
	}
}

func TestMemTransportClosed(t *testing.T) {
	w := testWorld(t, 16)
	tr := NewMemTransport(w, VantagePrimary)
	tr.Close()
	if err := tr.Send(context.Background(), w.Addr(1), 53, 40000, []byte{0}); err != ErrTransportClosed {
		t.Errorf("Send after Close = %v, want ErrTransportClosed", err)
	}
}

func TestMemTransportIgnoresGarbage(t *testing.T) {
	w := testWorld(t, 16)
	tr := NewMemTransport(w, VantagePrimary)
	defer tr.Close()
	tr.SetReceiver(func(netip.Addr, uint16, uint16, []byte) {
		t.Error("garbage produced a response")
	})
	if err := tr.Send(context.Background(), w.Addr(12345), 53, 40000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(context.Background(), netip.MustParseAddr("2001:db8::1"), 53, 40000, []byte{1}); err == nil {
		t.Error("IPv6 destination accepted")
	}
}

func TestUDPGatewayRoundTrip(t *testing.T) {
	w := testWorld(t, 16)
	u, _ := findResolver(t, w, At(0), func(p Profile) bool {
		return p.RCode == RCNoError && p.Manip == ManipHonest && !p.MisSourced
	})
	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	tr, err := DialGateway(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var mu sync.Mutex
	responses := make(chan *dnswire.Message, 4)
	tr.SetReceiver(func(src netip.Addr, srcPort, dstPort uint16, payload []byte) {
		mu.Lock()
		defer mu.Unlock()
		if src != w.Addr(u) && srcPort != 53 {
			t.Errorf("unexpected source %v:%d", src, srcPort)
		}
		m, err := dnswire.Unpack(payload)
		if err == nil {
			responses <- m
		}
	})
	q := dnswire.NewQuery(7, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	wire, _ := q.PackBytes()
	if err := tr.Send(context.Background(), w.Addr(u), 53, 41000, wire); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-responses:
		if m.Header.ID != 7 || len(m.Answers) == 0 {
			t.Errorf("gateway response = %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response through UDP gateway")
	}
}

func TestUDPGatewayTimeAdvances(t *testing.T) {
	w := testWorld(t, 16)
	gw, err := StartGateway(w, VantagePrimary)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gw.SetTime(At(30))
	if got := gw.time(); got.Week != 30 {
		t.Errorf("gateway clock = %+v", got)
	}
}
