package wildnet

import (
	"math"
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
)

func TestASNOfSeparatesCDNNodes(t *testing.T) {
	w := testWorld(t, 16)
	// CDN nodes must scatter across many ASes (the prefiltering
	// difficulty of §3.4).
	ases := map[uint32]bool{}
	for i := 0; i < 200; i++ {
		ases[w.ASNOf(w.RoleAddr(RoleCDNNode, i))] = true
	}
	if len(ases) < 30 {
		t.Errorf("CDN nodes span only %d ASes, want ≥30", len(ases))
	}
	// Site-host slots of one domain share an AS neighborhood.
	legit, _ := w.LegitAddrs("chase.com", "DE")
	for _, a := range legit[1:] {
		if w.ASNOf(a) != w.ASNOf(legit[0]) {
			t.Errorf("ordinary domain hosting split across ASes: %d vs %d",
				w.ASNOf(a), w.ASNOf(legit[0]))
		}
	}
	// Resolver space follows the geographic registry.
	u := uint32(1234)
	if w.ASNOf(u) != w.Geo().LookupU32(u).AS.ASN {
		t.Error("resolver-space ASN diverges from registry")
	}
}

func TestSignedZonesCoverScenario(t *testing.T) {
	w := testWorld(t, 16)
	for _, name := range []string{domains.GroundTruth, "wikileaks.org", "paypal.com"} {
		if _, ok := w.SignedZone(name); !ok {
			t.Errorf("%s unsigned", name)
		}
		pub, ok := w.ZonePublicKey(name)
		if !ok || len(pub) == 0 {
			t.Errorf("%s has no public key", name)
		}
	}
	if _, ok := w.SignedZone("facebook.com"); ok {
		t.Error("facebook.com must stay unsigned for the race experiment")
	}
	// Signing is deterministic.
	a, _ := w.ZonePublicKey("paypal.com")
	b, _ := w.ZonePublicKey("paypal.com")
	if string(a) != string(b) {
		t.Error("zone key not stable")
	}
}

func TestScanBlacklistCoversInfra(t *testing.T) {
	w := testWorld(t, 16)
	bl := w.ScanBlacklist()
	base, size := w.InfraRange()
	if bl.Size() != uint64(size) {
		t.Errorf("blacklist size %d, want %d", bl.Size(), size)
	}
	if !bl.ContainsU32(base) || !bl.ContainsU32(base+size-1) {
		t.Error("infra endpoints not blacklisted")
	}
	if bl.ContainsU32(base - 1) {
		t.Error("resolver space blacklisted")
	}
}

func TestAmpClassMarginals(t *testing.T) {
	w := testWorld(t, 18)
	counts := map[AmpClass]int{}
	total := 0
	for u := uint32(0); u < 1<<18; u++ {
		if c, ok := w.AmpClassAt(u, At(0)); ok {
			counts[c]++
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("population %d", total)
	}
	checks := []struct {
		class AmpClass
		want  float64
	}{
		{AmpLarge, 0.10}, {AmpModerate, 0.40}, {AmpMinimal, 0.45}, {AmpRefusesANY, 0.05},
	}
	for _, c := range checks {
		got := float64(counts[c.class]) / float64(total)
		if math.Abs(got-c.want) > 0.04 {
			t.Errorf("amp class %d share = %.3f, want %.2f", c.class, got, c.want)
		}
	}
}

func TestANYResponseSizes(t *testing.T) {
	w := testWorld(t, 17)
	findClass := func(want AmpClass) uint32 {
		for u := uint32(0); u < 1<<17; u++ {
			p, ok := w.ProfileAt(u, At(0))
			if !ok || p.RCode != RCNoError {
				continue
			}
			if c, _ := w.AmpClassAt(u, At(0)); c == want {
				return u
			}
		}
		t.Fatalf("no resolver of amp class %d", want)
		return 0
	}
	sizeOf := func(u uint32) int {
		q := dnswire.NewQuery(1, "chase.com", dnswire.TypeANY, dnswire.ClassIN)
		resps := w.HandleDNS(VantagePrimary, 4000, u, q, At(0))
		if len(resps) == 0 {
			t.Fatalf("no ANY response from %d", u)
		}
		wire, err := resps[0].Msg.PackBytes()
		if err != nil {
			t.Fatal(err)
		}
		return len(wire)
	}
	minimal := sizeOf(findClass(AmpMinimal))
	moderate := sizeOf(findClass(AmpModerate))
	large := sizeOf(findClass(AmpLarge))
	if !(large > moderate && moderate > minimal) {
		t.Errorf("ANY size ordering broken: %d / %d / %d", minimal, moderate, large)
	}
	if large < minimal*10 {
		t.Errorf("large amplifier only %dx the minimal response", large/minimal)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tt := Time{Week: 2, Day: 3, Hour: 5, Minute: 30}
	if tt.AbsDay() != 17 {
		t.Errorf("AbsDay = %d", tt.AbsDay())
	}
	if tt.AbsHour() != 17*24+5 {
		t.Errorf("AbsHour = %d", tt.AbsHour())
	}
	if tt.AbsSeconds() != int64(17*24+5)*3600+1800 {
		t.Errorf("AbsSeconds = %d", tt.AbsSeconds())
	}
}

func TestExpectedPopulationTracksDecline(t *testing.T) {
	w := testWorld(t, 18)
	if w.ExpectedPopulation(At(55)) >= w.ExpectedPopulation(At(0)) {
		t.Error("expected population does not decline")
	}
}

func TestUDPPayloadLimitSemantics(t *testing.T) {
	w := testWorld(t, 17)
	var large, minimal uint32
	haveLarge, haveMinimal := false, false
	for u := uint32(0); u < 1<<17 && !(haveLarge && haveMinimal); u++ {
		c, ok := w.AmpClassAt(u, At(0))
		if !ok {
			continue
		}
		if c == AmpLarge && !haveLarge {
			large, haveLarge = u, true
		}
		if c == AmpMinimal && !haveMinimal {
			minimal, haveMinimal = u, true
		}
	}
	if !haveLarge || !haveMinimal {
		t.Fatal("amp classes not found")
	}
	plain := dnswire.NewQuery(1, "chase.com", dnswire.TypeANY, dnswire.ClassIN)
	edns := dnswire.NewQuery(1, "chase.com", dnswire.TypeANY, dnswire.ClassIN)
	edns.AddEDNS(4096)
	huge := dnswire.NewQuery(1, "chase.com", dnswire.TypeANY, dnswire.ClassIN)
	huge.AddEDNS(65000)

	if got := w.UDPPayloadLimit(large, plain, At(0)); got != dnswire.MaxUDPSize {
		t.Errorf("no-EDNS limit = %d, want 512", got)
	}
	if got := w.UDPPayloadLimit(large, edns, At(0)); got != 4096 {
		t.Errorf("EDNS limit on large amp = %d, want 4096", got)
	}
	if got := w.UDPPayloadLimit(large, huge, At(0)); got != 4096 {
		t.Errorf("advertised size not capped: %d", got)
	}
	if got := w.UDPPayloadLimit(minimal, edns, At(0)); got != dnswire.MaxUDPSize {
		t.Errorf("EDNS honored by non-EDNS resolver: %d", got)
	}
}

func TestHandleDNSTCPSkipsInjector(t *testing.T) {
	w := testWorld(t, 18)
	// Find a CN resolver that censors facebook over UDP and offers TCP.
	for u := uint32(0); u < 1<<18; u++ {
		p, ok := w.ProfileAt(u, At(50))
		if !ok || p.Country != "CN" || p.RCode != RCNoError || p.Manip != ManipHonest || !p.GFWDouble {
			continue
		}
		q := dnswire.NewQuery(1, "facebook.com", dnswire.TypeA, dnswire.ClassIN)
		resp := w.HandleDNSTCP(VantagePrimary, u, q, At(50))
		if resp == nil {
			continue // no TCP service on this one
		}
		// Over TCP the injected first answer cannot exist; the double
		// responder's own (legitimate) answer comes through.
		legit, _ := w.LegitAddrs("facebook.com", "CN")
		got := resp.AnswerAddrs()
		if len(got) == 0 {
			t.Fatal("empty TCP answer")
		}
		found := false
		for _, a := range got {
			b := a.As4()
			ua := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			for _, l := range legit {
				if ua == l {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("TCP answer %v not legitimate %v", got, legit)
		}
		return
	}
	t.Skip("no TCP-capable double-response CN resolver at this order")
}
