//go:build race

package wildnet

// raceEnabled gates the AllocsPerRun regression tests: the race detector
// instruments allocations, so zero-alloc assertions only hold without it.
const raceEnabled = true
