package wildnet

import (
	"strings"
	"testing"
)

func TestChaosProfilesValidate(t *testing.T) {
	for _, name := range ChaosProfileNames() {
		f, err := ChaosProfile(name)
		if err != nil {
			t.Fatalf("ChaosProfile(%q): %v", name, err)
		}
		if err := f.validate(); err != nil {
			t.Errorf("profile %q does not validate: %v", name, err)
		}
		if name == "clean" && f.Enabled() {
			t.Error("clean profile must be the zero FaultConfig")
		}
		if name != "clean" && !f.Enabled() {
			t.Errorf("profile %q reads as disabled", name)
		}
	}
	if _, err := ChaosProfile("mayhem"); err == nil || !strings.Contains(err.Error(), "mayhem") {
		t.Errorf("unknown profile error = %v, want it to name the profile", err)
	}
}

func TestFaultConfigValidateRejectsGarbage(t *testing.T) {
	cases := []FaultConfig{
		{ExtraLoss: -0.1},
		{BurstProb: 1.5},
		{RateLimitRefuse: 2},
		{LatencyBaseMS: -1},
		{FlapWindowMin: -3},
	}
	for i, f := range cases {
		if err := f.validate(); err == nil {
			t.Errorf("case %d (%+v) validated", i, f)
		}
	}
	cfg := DefaultConfig(14)
	cfg.Faults = FaultConfig{ExtraLoss: 7}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("NewWorld accepted an out-of-range fault probability")
	}
}

// faultyWorld builds a small world under the given profile.
func faultyWorld(t *testing.T, order uint, profile string) *World {
	t.Helper()
	cfg := DefaultConfig(order)
	cfg.Faults = MustChaosProfile(profile)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFaultDrawsArePure(t *testing.T) {
	w := faultyWorld(t, 14, "hostile")
	w2 := faultyWorld(t, 14, "hostile")
	tm := At(2)
	for u := uint32(1); u < 2000; u++ {
		ph := uint64(u) * 0x9E3779B97F4A7C15
		for attempt := uint64(0); attempt < 3; attempt++ {
			if w.faultDrop(dirQuery, u, 53, 40000, ph, tm, attempt) !=
				w2.faultDrop(dirQuery, u, 53, 40000, ph, tm, attempt) {
				t.Fatalf("faultDrop(u=%d, attempt=%d) differs between identical worlds", u, attempt)
			}
		}
		if w.faultFlapped(u, tm) != w2.faultFlapped(u, tm) {
			t.Fatalf("faultFlapped(u=%d) differs between identical worlds", u)
		}
	}
}

func TestFaultAttemptRedraws(t *testing.T) {
	// The attempt number must change some packet fates, or retrying an
	// identical payload under a chaos profile would be pointless.
	w := faultyWorld(t, 14, "lossy")
	tm := At(0)
	differs := 0
	for u := uint32(1); u < 5000; u++ {
		ph := uint64(u) * 0x100000001B3
		if w.faultDrop(dirQuery, u, 53, 40000, ph, tm, 0) !=
			w.faultDrop(dirQuery, u, 53, 40000, ph, tm, 1) {
			differs++
		}
	}
	if differs == 0 {
		t.Error("attempt 0 and attempt 1 share every fate; retransmissions never redraw")
	}
}

func TestFaultFlapWindows(t *testing.T) {
	w := faultyWorld(t, 14, "flaky")
	// Some host must flap at some window, and a flapped host must come
	// back in a later window (an outage, not churn).
	var host uint32
	var when Time
	found := false
	for u := uint32(1); u < 20000 && !found; u++ {
		for min := 0; min < 60; min += 10 {
			tm := Time{Minute: min}
			if w.faultFlapped(u, tm) {
				host, when, found = u, tm, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no flapped (host, window) among 20k hosts × 6 windows at FlapProb=0.03")
	}
	returned := false
	for k := 1; k <= 48; k++ {
		later := Time{Minute: when.Minute + 10*k}
		if !w.faultFlapped(host, later) {
			returned = true
			break
		}
	}
	if !returned {
		t.Errorf("host %d never returned within 8 hours of windows", host)
	}
}

func TestFaultRateLimiterClasses(t *testing.T) {
	w := faultyWorld(t, 14, "hostile")
	tm := At(0)
	limited, admitted, refusedN, droppedN := 0, 0, 0, 0
	trials := 20000
	for i := 0; i < trials; i++ {
		identity := uint64(i)*0x9E3779B97F4A7C15 + 1
		fc := faultCtx{payloadHash: uint64(i), attempt: 0}
		refused, dropped := w.faultRateLimited(identity, tm, fc)
		switch {
		case refused:
			limited++
			refusedN++
		case dropped:
			limited++
			droppedN++
		default:
			admitted++
		}
	}
	// hostile: 10% limiters, each rejecting half its queries → ~5% of
	// draws misbehave, split between REFUSED and silence.
	if limited == 0 || refusedN == 0 || droppedN == 0 {
		t.Fatalf("rate limiter never exercised all verdicts: limited=%d refused=%d dropped=%d", limited, refusedN, droppedN)
	}
	share := float64(limited) / float64(trials)
	if share < 0.02 || share > 0.10 {
		t.Errorf("limited share = %.3f, want ≈0.05 for the hostile profile", share)
	}
	if admitted == 0 {
		t.Error("no query admitted")
	}
}

func TestFaultAdjustResponsesDeadline(t *testing.T) {
	w := faultyWorld(t, 14, "hostile") // DeadlineMS=260, LatencyBaseMS=40
	tm := At(0)
	resps := []QueryResponse{
		{Src: 1, ToPort: 40000, DelayMS: 5},
		{Src: 2, ToPort: 40000, DelayMS: 100000}, // far past any deadline
	}
	out := w.faultAdjustResponses(resps, tm, faultCtx{payloadHash: 7})
	if len(out) != 1 {
		t.Fatalf("deadline kept %d responses, want 1", len(out))
	}
	if out[0].Src != 1 {
		t.Errorf("survivor = src %d, want 1", out[0].Src)
	}
	if out[0].DelayMS < 5+40 {
		t.Errorf("survivor delay = %dms, want ≥45 (base latency added)", out[0].DelayMS)
	}
	if out[0].DelayMS > 260 {
		t.Errorf("survivor delay = %dms exceeds the 260ms deadline yet survived", out[0].DelayMS)
	}
}

func TestFaultGarbleMutatesDeterministically(t *testing.T) {
	cfg := DefaultConfig(14)
	cfg.Faults = FaultConfig{GarbleProb: 1}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := At(0)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	w.faultGarble(a, 99, 1234, tm, 0)
	w.faultGarble(b, 99, 1234, tm, 0)
	if string(a) != string(b) {
		t.Fatalf("garble is not deterministic: %v vs %v", a, b)
	}
	if string(a) == string(orig) {
		t.Error("GarbleProb=1 left the packet intact")
	}
	// A zero-probability config must never touch the buffer.
	w2 := testWorld(t, 14)
	c := append([]byte(nil), orig...)
	w2.faultGarble(c, 99, 1234, tm, 0)
	if string(c) != string(orig) {
		t.Error("disabled garble mutated the packet")
	}
}

func TestAttemptCounter(t *testing.T) {
	c := newAttemptCounter()
	if got := c.next(1, 100); got != 0 {
		t.Errorf("first transmission counted %d predecessors, want 0", got)
	}
	if got := c.next(1, 100); got != 1 {
		t.Errorf("second transmission counted %d, want 1", got)
	}
	if got := c.next(2, 100); got != 0 {
		t.Errorf("different address shares the counter: %d, want 0", got)
	}
	if got := c.next(1, 200); got != 0 {
		t.Errorf("different payload shares the counter: %d, want 0", got)
	}
	c.reset()
	if got := c.next(1, 100); got != 0 {
		t.Errorf("post-reset transmission counted %d, want 0", got)
	}
}
