package prefilter

import (
	"testing"

	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
)

// fakeEnv builds a controllable environment: addresses 100–109 belong to
// AS 1 (the trusted home of chase.com), 200–209 to AS 2 with CDN certs,
// 300 has a verifying rDNS record, everything else is dark.
func fakeEnv() Env {
	return Env{
		TrustedResolve: func(name string) ([]uint32, dnswire.RCode) {
			switch name {
			case "chase.com":
				return []uint32{100, 101}, dnswire.RCodeNoError
			case "facebook.com":
				return []uint32{200}, dnswire.RCodeNoError
			case "ghoogle.com":
				return nil, dnswire.RCodeNXDomain
			case "mail.chase.com":
				return []uint32{300}, dnswire.RCodeNoError
			default:
				return nil, dnswire.RCodeNXDomain
			}
		},
		RDNS: func(ip uint32) (string, bool) {
			if ip == 300 {
				return "mail.chase.com", true
			}
			return "", false
		},
		ASOf: func(ip uint32) uint32 {
			switch {
			case ip >= 100 && ip < 110:
				return 1
			case ip >= 200 && ip < 210:
				return 2
			default:
				return 99
			}
		},
		CertProbe: func(ip uint32, serverName string, sni bool) (Cert, bool) {
			if ip >= 200 && ip < 210 {
				if sni {
					return Cert{Valid: true, CommonName: serverName, DNSNames: []string{serverName}}, true
				}
				return Cert{Valid: true, CommonName: "static.cdn-global.example"}, true
			}
			return Cert{}, false
		},
		TrustedCDNNames: []string{"static.cdn-global.example"},
	}
}

// buildScan assembles a synthetic scan result: one resolver per answer
// pattern.
func buildScan(name string, answers []scanner.TupleAnswer) *scanner.DomainScanResult {
	resolvers := make([]uint32, len(answers))
	for i := range resolvers {
		resolvers[i] = uint32(1000 + i)
		answers[i].ResolverIdx = i
	}
	return &scanner.DomainScanResult{
		Resolvers: resolvers,
		Names:     []string{name},
		Answers:   [][]scanner.TupleAnswer{answers},
	}
}

func TestRuleSameAS(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100}, Responses: 1},  // exact trusted IP
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{105}, Responses: 1},  // same AS, different IP
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{9999}, Responses: 1}, // foreign
	})
	res := Run(scan, fakeEnv())
	want := []Class{ClassLegit, ClassLegit, ClassUnexpected}
	for i, w := range want {
		if got := res.Verdicts[0][i]; got != w {
			t.Errorf("resolver %d: verdict %v, want %v", i, got, w)
		}
	}
	if len(res.Unexpected) != 1 || res.Unexpected[0].IP != 9999 {
		t.Errorf("unexpected tuples = %+v", res.Unexpected)
	}
}

func TestRuleRDNSRoundTrip(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{300}, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	if got := res.Verdicts[0][0]; got != ClassLegit {
		t.Errorf("rDNS-verified tuple = %v, want legit", got)
	}
}

func TestRuleRDNSRequiresRoundTrip(t *testing.T) {
	env := fakeEnv()
	// rDNS resembles the domain but the A record points elsewhere.
	env.RDNS = func(ip uint32) (string, bool) {
		if ip == 301 {
			return "mail.chase.com", true
		}
		return "", false
	}
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{301}, Responses: 1},
	})
	res := Run(scan, env)
	if got := res.Verdicts[0][0]; got != ClassUnexpected {
		t.Errorf("spoofed rDNS accepted: %v", got)
	}
}

func TestRuleCDNCertificate(t *testing.T) {
	// facebook.com is a CDN domain; an IP outside the trusted AS with a
	// valid SNI cert must be filtered.
	scan := buildScan("facebook.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{205}, Responses: 1},
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{777}, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	if got := res.Verdicts[0][0]; got != ClassLegit {
		t.Errorf("CDN cert tuple = %v, want legit", got)
	}
	if got := res.Verdicts[0][1]; got != ClassUnexpected {
		t.Errorf("dark IP = %v, want unexpected", got)
	}
}

func TestCertRuleRestrictedToCDNKind(t *testing.T) {
	// chase.com is an ordinary domain: a matching SNI cert alone (a TLS
	// proxy's trick) must NOT whitelist a foreign IP.
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{205}, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	if got := res.Verdicts[0][0]; got != ClassUnexpected {
		t.Errorf("TLS-proxied ordinary domain = %v, want unexpected", got)
	}
}

func TestNXClasses(t *testing.T) {
	scan := buildScan("ghoogle.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNXDomain, Responses: 1},
		{RCode: dnswire.RCodeNoError, Responses: 1},                       // empty NOERROR
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{444}, Responses: 1}, // monetized
	})
	res := Run(scan, fakeEnv())
	want := []Class{ClassEmpty, ClassEmpty, ClassUnexpected}
	for i, w := range want {
		if got := res.Verdicts[0][i]; got != w {
			t.Errorf("NX resolver %d: %v, want %v", i, got, w)
		}
	}
}

func TestErrorAndSilence(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeRefused, Responses: 1},
		{RCode: dnswire.RCodeServFail, Responses: 1},
		{}, // never answered
		{RCode: dnswire.RCodeNoError, NSOnly: true, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	want := []Class{ClassErrorRCode, ClassErrorRCode, ClassUnanswered, ClassNSOnly}
	for i, w := range want {
		if got := res.Verdicts[0][i]; got != w {
			t.Errorf("resolver %d: %v, want %v", i, got, w)
		}
	}
}

func TestMixedAnswerSetNeedsAllLegit(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100, 9999}, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	if got := res.Verdicts[0][0]; got != ClassUnexpected {
		t.Errorf("partially-bogus answer = %v, want unexpected", got)
	}
	// Only the bogus address lands in the unexpected tuple list.
	if len(res.Unexpected) != 1 || res.Unexpected[0].IP != 9999 {
		t.Errorf("unexpected = %+v", res.Unexpected)
	}
}

func TestLegitimacyCache(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100}, Responses: 1},
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100}, Responses: 1},
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100}, Responses: 1},
	})
	res := Run(scan, fakeEnv())
	if res.CacheHits < 2 {
		t.Errorf("cache hits = %d, want ≥ 2", res.CacheHits)
	}
}

func TestDomainStatsShares(t *testing.T) {
	scan := buildScan("chase.com", []scanner.TupleAnswer{
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{100}, Responses: 1},
		{RCode: dnswire.RCodeNoError, Addrs: []uint32{9999}, Responses: 1},
		{},
	})
	res := Run(scan, fakeEnv())
	d := res.PerDomain[0]
	if got := d.Share(ClassLegit); got != 0.5 {
		t.Errorf("legit share = %f (unanswered must not dilute)", got)
	}
	if got := d.Share(ClassUnexpected); got != 0.5 {
		t.Errorf("unexpected share = %f", got)
	}
}

func TestCertCoversName(t *testing.T) {
	c := Cert{Valid: true, CommonName: "example.com", DNSNames: []string{"*.cdn.example", "www.example.com"}}
	cases := []struct {
		host string
		want bool
	}{
		{"example.com", true},
		{"www.example.com", true},
		{"a.cdn.example", true},
		{"deep.a.cdn.example", true},
		{"other.com", false},
	}
	for _, cse := range cases {
		if got := c.CoversName(cse.host); got != cse.want {
			t.Errorf("CoversName(%q) = %v, want %v", cse.host, got, cse.want)
		}
	}
	if (Cert{Valid: false, CommonName: "x.com"}).CoversName("x.com") {
		t.Error("invalid cert covered a name")
	}
}
