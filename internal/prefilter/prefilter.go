// Package prefilter implements step ❸ of the processing chain (§3.4):
// sorting the billions of (domain ∘ ip ∘ resolver) tuples from the domain
// scans into legitimate and unknown. The three rules of the paper are
// applied in order: trusted-resolution AS matching, rDNS round-trip
// verification, and the HTTPS certificate probe (with and without SNI)
// that recovers CDN deployments scattered across foreign ASes.
package prefilter

import (
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/scanner"
)

// Class is the verdict for one tuple.
type Class uint8

// Tuple classes.
const (
	ClassUnanswered Class = iota
	ClassErrorRCode       // REFUSED / SERVFAIL / other error codes
	ClassEmpty            // NOERROR without answer addresses (incl. NXDOMAIN for NX names)
	ClassNSOnly           // authority-only responses denying recursion
	ClassLegit            // every returned address passed a filter rule
	ClassUnexpected       // at least one unfiltered address
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassUnanswered:
		return "unanswered"
	case ClassErrorRCode:
		return "error"
	case ClassEmpty:
		return "empty"
	case ClassNSOnly:
		return "ns-only"
	case ClassLegit:
		return "legitimate"
	default:
		return "unexpected"
	}
}

// Cert is the certificate view the TLS probe returns.
type Cert struct {
	Valid      bool
	SelfSigned bool
	CommonName string
	DNSNames   []string
}

// CoversName reports whether the certificate is valid for host.
func (c Cert) CoversName(host string) bool {
	if !c.Valid {
		return false
	}
	cn := dnswire.CanonicalName(host)
	for _, n := range c.DNSNames {
		n = dnswire.CanonicalName(n)
		if n == cn || (strings.HasPrefix(n, "*.") && strings.HasSuffix(cn, n[1:])) {
			return true
		}
	}
	return dnswire.CanonicalName(c.CommonName) == cn
}

// Env provides the external lookups the rules need. All of them go
// through measurement-side channels (trusted resolvers, TLS probes) — the
// prefilter never peeks at the world's ground truth.
type Env struct {
	// TrustedResolve performs an A lookup at the measurement team's
	// trusted recursive resolvers.
	TrustedResolve func(name string) ([]uint32, dnswire.RCode)
	// RDNS resolves the PTR record of an address.
	RDNS func(ip uint32) (string, bool)
	// ASOf maps an address to its autonomous system.
	ASOf func(ip uint32) uint32
	// CertProbe performs the HTTPS probe against ip for serverName,
	// with or without SNI. ok is false when no TLS service answers.
	CertProbe func(ip uint32, serverName string, sni bool) (Cert, bool)
	// TrustedCDNNames lists the well-known default-certificate common
	// names of the largest CDN providers (§3.4 accepts their non-SNI
	// certificates).
	TrustedCDNNames []string
}

// Tuple identifies one unexpected (domain ∘ ip ∘ resolver) combination.
type Tuple struct {
	NameIdx     int
	ResolverIdx int
	IP          uint32
}

// DomainStats aggregates one scanned name's verdicts.
type DomainStats struct {
	Name    string
	Counts  map[Class]int
	Scanned int
}

// Share returns a class's share of the answered tuples.
func (d *DomainStats) Share(c Class) float64 {
	answered := d.Scanned - d.Counts[ClassUnanswered]
	if answered == 0 {
		return 0
	}
	return float64(d.Counts[c]) / float64(answered)
}

// Result is the prefiltering outcome for one domain-set scan.
type Result struct {
	PerDomain []DomainStats
	// Unexpected lists every tuple that survived filtering, the input
	// of the data-acquisition stage.
	Unexpected []Tuple
	// Verdicts[nameIdx][resolverIdx] is the tuple class.
	Verdicts [][]Class
	// CacheHits counts (domain, ip) pairs settled from the legitimacy
	// cache rather than fresh rule evaluation.
	CacheHits int
}

// UnexpectedResolvers returns the distinct resolvers with at least one
// unexpected tuple.
func (r *Result) UnexpectedResolvers() map[int]bool {
	out := map[int]bool{}
	for _, t := range r.Unexpected {
		out[t.ResolverIdx] = true
	}
	return out
}

// Run prefilters a domain scan.
func Run(scan *scanner.DomainScanResult, env Env) *Result {
	res := &Result{
		PerDomain: make([]DomainStats, len(scan.Names)),
		Verdicts:  make([][]Class, len(scan.Names)),
	}
	// The legitimacy cache is keyed by (name, ip): rule evaluation for
	// a pair is independent of the resolver that returned it.
	legitCache := map[pairKey]bool{}

	for ni, name := range scan.Names {
		stats := &res.PerDomain[ni]
		stats.Name = name
		stats.Counts = map[Class]int{}
		stats.Scanned = len(scan.Resolvers)
		res.Verdicts[ni] = make([]Class, len(scan.Resolvers))

		cn := dnswire.CanonicalName(name)
		d, listed := domains.ByName(cn)
		isNX := listed && d.Kind == domains.KindNonexistent

		// Trusted resolution once per name (rule i baseline).
		trustedAddrs, trustedRC := env.TrustedResolve(cn)
		trustedAS := map[uint32]bool{}
		for _, a := range trustedAddrs {
			trustedAS[env.ASOf(a)] = true
		}
		_ = trustedRC

		for ri := range scan.Resolvers {
			a := &scan.Answers[ni][ri]
			verdict := classifyTuple(a, cn, isNX, trustedAS, env, legitCache, res)
			res.Verdicts[ni][ri] = verdict
			stats.Counts[verdict]++
			if verdict == ClassUnexpected {
				for _, ip := range a.Addrs {
					if !pairLegit(cn, ip, trustedAS, env, legitCache, res) {
						res.Unexpected = append(res.Unexpected, Tuple{NameIdx: ni, ResolverIdx: ri, IP: ip})
					}
				}
			}
		}
	}
	return res
}

// pairKey keys the legitimacy cache.
type pairKey struct {
	name string
	ip   uint32
}

func classifyTuple(a *scanner.TupleAnswer, cn string, isNX bool, trustedAS map[uint32]bool, env Env, cache map[pairKey]bool, res *Result) Class {
	if !a.Answered() {
		return ClassUnanswered
	}
	switch a.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeNXDomain:
		if isNX {
			return ClassEmpty // expected for nonexistent names (§3.4)
		}
		return ClassEmpty
	default:
		return ClassErrorRCode
	}
	if len(a.Addrs) == 0 {
		if a.NSOnly {
			return ClassNSOnly
		}
		return ClassEmpty
	}
	if isNX {
		// Any address for a nonexistent name is unexpected.
		return ClassUnexpected
	}
	for _, ip := range a.Addrs {
		if !pairLegit(cn, ip, trustedAS, env, cache, res) {
			return ClassUnexpected
		}
	}
	return ClassLegit
}

// pairLegit evaluates the three filtering rules for one (name, ip) pair,
// memoized.
func pairLegit(cn string, ip uint32, trustedAS map[uint32]bool, env Env, cache map[pairKey]bool, res *Result) bool {
	k := pairKey{name: cn, ip: ip}
	if v, ok := cache[k]; ok {
		res.CacheHits++
		return v
	}
	v := evalRules(cn, ip, trustedAS, env)
	cache[k] = v
	return v
}

func evalRules(cn string, ip uint32, trustedAS map[uint32]bool, env Env) bool {
	// Rule (i): the address sits in one of the ASes our own trusted
	// resolution landed in.
	if trustedAS[env.ASOf(ip)] {
		return true
	}
	// Rule (ii): the address's rDNS resembles the domain AND the A
	// lookup of the rDNS name returns the address (only the owner can
	// close that loop).
	if rdns, ok := env.RDNS(ip); ok && rdnsResembles(rdns, cn) {
		if addrs, rc := env.TrustedResolve(dnswire.CanonicalName(rdns)); rc == dnswire.RCodeNoError {
			for _, a := range addrs {
				if a == ip {
					return true
				}
			}
		}
	}
	// Rule (iii): the HTTPS probe. Only CDN-distributed domains are
	// expected outside their home ASes; accepting any matching cert
	// would let transparent TLS proxies whitewash arbitrary domains.
	d, listed := domains.ByName(cn)
	if !listed || d.Kind != domains.KindCDN {
		return false
	}
	// SNI request first: accept a valid, known certificate for the
	// requested name.
	if cert, ok := env.CertProbe(ip, cn, true); ok && cert.CoversName(cn) && !cert.SelfSigned {
		return true
	}
	// For the largest CDN providers also accept the well-known default
	// certificate delivered without SNI.
	if cert, ok := env.CertProbe(ip, cn, false); ok && cert.Valid && !cert.SelfSigned {
		for _, known := range env.TrustedCDNNames {
			if dnswire.EqualNamesFold(cert.CommonName, known) {
				return true
			}
		}
	}
	return false
}

// rdnsResembles reports whether the domain part of an rDNS record
// resembles the requested domain (§3.4 rule ii).
func rdnsResembles(rdns, cn string) bool {
	r := dnswire.CanonicalName(rdns)
	return r == cn || strings.HasSuffix(r, "."+cn) || strings.HasSuffix(cn, "."+r)
}
