// Package crashtest is the crash-injection harness behind `make crash`:
// it SIGKILLs a real goingwild process at seeded-random points mid-run,
// resumes it from its checkpoint directory, and requires the final
// stdout to be byte-identical to an uninterrupted run of the same
// flags. The matrix covers all four chaos profiles, in-process sharding
// (-shards 4), and a GOMAXPROCS flip across resume attempts, plus two
// targeted scenarios: a torn newest checkpoint (must fall back to the
// previous generation and still complete) and the two-phase SIGINT
// contract (first interrupt drains, checkpoints, and exits 3).
//
// The tests fork and kill real processes and take minutes, so they are
// gated behind CRASHTEST=1 and skipped by plain `go test ./...`.
package crashtest
