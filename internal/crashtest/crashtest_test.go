package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// gate skips unless the crash matrix was asked for explicitly: these
// tests fork, kill, and resume real processes for minutes.
func gate(t *testing.T) {
	t.Helper()
	if os.Getenv("CRASHTEST") == "" {
		t.Skip("set CRASHTEST=1 to run the SIGKILL crash-resume matrix (make crash)")
	}
}

// artifactDir is where mismatching outputs land so CI can upload them.
const artifactDir = "/tmp/crashtest"

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// goingwildBin builds cmd/goingwild once and returns the binary path.
func goingwildBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "crashtest-bin-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "goingwild")
		cmd := exec.Command("go", "build", "-o", buildBin, "goingwild/cmd/goingwild")
		cmd.Dir = "../.." // module root relative to internal/crashtest
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building goingwild: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// runResult is one process run: its streams, duration, and how it died.
type runResult struct {
	stdout, stderr bytes.Buffer
	dur            time.Duration
	exit           int
	killed         bool // SIGKILLed by the harness timer
}

// runOnce runs bin with args under the given GOMAXPROCS, SIGKILLing it
// after killAfter (0 = let it finish).
func runOnce(t *testing.T, bin string, args []string, gomaxprocs string, killAfter time.Duration) *runResult {
	t.Helper()
	res := &runResult{}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &res.stdout
	cmd.Stderr = &res.stderr
	cmd.Env = append(os.Environ(), "GOMAXPROCS="+gomaxprocs)
	start := time.Now()
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	var timer *time.Timer
	if killAfter > 0 {
		timer = time.AfterFunc(killAfter, func() { cmd.Process.Kill() })
	}
	err := cmd.Wait()
	if timer != nil {
		timer.Stop()
	}
	res.dur = time.Since(start)
	if err == nil {
		return res
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("waiting for %s: %v", bin, err)
	}
	res.exit = ee.ExitCode()
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
		res.killed = true
	}
	return res
}

// saveMismatch writes got/want to the artifact directory for CI upload
// and returns the paths.
func saveMismatch(t *testing.T, name string, got, want []byte) (string, string) {
	t.Helper()
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		t.Fatal(err)
	}
	gp := filepath.Join(artifactDir, name+".got.txt")
	wp := filepath.Join(artifactDir, name+".want.txt")
	os.WriteFile(gp, got, 0o644)
	os.WriteFile(wp, want, 0o644)
	return gp, wp
}

// scenarioArgs is the flag set every run in a scenario shares; the
// checkpoint flags are appended per attempt.
func scenarioArgs(chaos string, shards int) []string {
	args := []string{"-order", "16", "-exp", "all", "-weeks", "6", "-chaos", chaos}
	if shards > 1 {
		args = append(args, "-shards", fmt.Sprint(shards))
	}
	return args
}

// TestCrashResumeByteIdentity is the main matrix: for each scenario,
// record the uninterrupted stdout, then run the same flags with a
// checkpoint directory, SIGKILLing at seeded-random points and resuming
// (alternating GOMAXPROCS across attempts) until a run completes. The
// completing run's stdout — journaled sections replayed, interrupted
// work redone — must match the uninterrupted run byte for byte.
func TestCrashResumeByteIdentity(t *testing.T) {
	gate(t)
	bin := goingwildBin(t)
	scenarios := []struct {
		chaos  string
		shards int
	}{
		{"clean", 1}, {"lossy", 1}, {"hostile", 1}, {"flaky", 1},
		{"clean", 4}, {"hostile", 4},
	}
	// killQuota kills per scenario keeps the total well past the
	// twenty-point floor while letting each scenario terminate.
	const (
		killQuota   = 4
		maxAttempts = 40
	)
	rng := rand.New(rand.NewSource(0x5EED))
	totalKills := 0
	for _, sc := range scenarios {
		name := fmt.Sprintf("%s-m%d", sc.chaos, sc.shards)
		t.Run(name, func(t *testing.T) {
			args := scenarioArgs(sc.chaos, sc.shards)
			base := runOnce(t, bin, args, "4", 0)
			if base.exit != 0 {
				t.Fatalf("baseline failed (exit %d):\n%s", base.exit, base.stderr.String())
			}
			dir := t.TempDir()
			kills := 0
			lastDur := base.dur
			for attempt := 0; ; attempt++ {
				if attempt >= maxAttempts {
					t.Fatalf("no attempt completed after %d tries (%d kills)", maxAttempts, kills)
				}
				runArgs := append(append([]string{}, args...), "-checkpoint", dir)
				if attempt > 0 {
					runArgs = append(runArgs, "-resume")
				}
				// Flip schedulers across attempts: resume state must be
				// insensitive to GOMAXPROCS.
				gmp := "4"
				if attempt%2 == 1 {
					gmp = "1"
				}
				// While under quota, aim the kill inside the previous
				// attempt's runtime so it actually lands; after quota,
				// let the run finish.
				var killAfter time.Duration
				if kills < killQuota {
					window := lastDur / 2
					if window < 20*time.Millisecond {
						window = 20 * time.Millisecond
					}
					killAfter = 10*time.Millisecond + time.Duration(rng.Int63n(int64(window)))
				}
				res := runOnce(t, bin, runArgs, gmp, killAfter)
				lastDur = res.dur
				if res.killed {
					kills++
					continue
				}
				if res.exit != 0 {
					t.Fatalf("attempt %d exited %d:\n%s", attempt, res.exit, res.stderr.String())
				}
				if !bytes.Equal(res.stdout.Bytes(), base.stdout.Bytes()) {
					gp, wp := saveMismatch(t, name, res.stdout.Bytes(), base.stdout.Bytes())
					t.Fatalf("resumed stdout diverges from uninterrupted run after %d kills; see %s vs %s", kills, gp, wp)
				}
				t.Logf("%s: byte-identical after %d kills, %d attempts", name, kills, attempt+1)
				break
			}
			totalKills += kills
		})
	}
	if totalKills < 20 {
		t.Errorf("matrix landed only %d kills, want >= 20; tighten the kill windows", totalKills)
	}
	t.Logf("matrix total: %d kills", totalKills)
}

// ckptFiles lists the checkpoint generations in dir, oldest first.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	return names
}

// TestTornCheckpointFallsBack kills a checkpointed run once two
// generations exist, truncates the newest one mid-file, and requires
// the resume to diagnose the torn snapshot, fall back to the previous
// generation, and still finish with byte-identical output.
func TestTornCheckpointFallsBack(t *testing.T) {
	gate(t)
	bin := goingwildBin(t)
	args := scenarioArgs("hostile", 1)
	base := runOnce(t, bin, args, "4", 0)
	if base.exit != 0 {
		t.Fatalf("baseline failed (exit %d):\n%s", base.exit, base.stderr.String())
	}
	dir := t.TempDir()
	// Kill progressively later until at least two generations are on
	// disk (the store prunes to two, so "at least" means exactly). A
	// run that outlives its kill timer is fine as long as it left two
	// generations behind: tearing the newest still exercises fallback.
	var gens []string
	for frac := 3; ; frac++ {
		if frac > 9 {
			t.Fatalf("never accumulated two checkpoint generations, got %v", gens)
		}
		runArgs := append(append([]string{}, args...), "-checkpoint", dir)
		if frac > 3 {
			runArgs = append(runArgs, "-resume")
		}
		res := runOnce(t, bin, runArgs, "4", base.dur*time.Duration(frac)/10)
		if gens = ckptFiles(t, dir); len(gens) >= 2 {
			break
		}
		if !res.killed {
			t.Fatalf("run finished (exit %d) leaving only %d generations", res.exit, len(gens))
		}
	}
	// Tear the newest generation in half.
	newest := gens[len(gens)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	resumeArgs := append(append([]string{}, args...), "-checkpoint", dir, "-resume")
	res := runOnce(t, bin, resumeArgs, "4", 0)
	if res.exit != 0 {
		t.Fatalf("resume after torn checkpoint exited %d:\n%s", res.exit, res.stderr.String())
	}
	if !strings.Contains(res.stderr.String(), "falling back to previous generation") {
		t.Errorf("resume did not diagnose the torn snapshot; stderr:\n%s", res.stderr.String())
	}
	if !bytes.Equal(res.stdout.Bytes(), base.stdout.Bytes()) {
		gp, wp := saveMismatch(t, "torn", res.stdout.Bytes(), base.stdout.Bytes())
		t.Fatalf("post-fallback stdout diverges; see %s vs %s", gp, wp)
	}
}

// TestInterruptCheckpointsAndResumes pins the two-phase SIGINT
// contract: the first interrupt drains to a rendezvous, checkpoints,
// reports how to resume, and exits 3; the resumed run completes with
// byte-identical output.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	gate(t)
	bin := goingwildBin(t)
	args := scenarioArgs("clean", 1)
	base := runOnce(t, bin, args, "4", 0)
	if base.exit != 0 {
		t.Fatalf("baseline failed (exit %d):\n%s", base.exit, base.stderr.String())
	}
	dir := t.TempDir()
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", dir)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(base.dur/3, func() { cmd.Process.Signal(os.Interrupt) })
	err := cmd.Wait()
	timer.Stop()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("interrupted run: want exit 3, got %v; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "checkpoint saved; resume with -resume") {
		t.Errorf("missing resume hint on stderr:\n%s", stderr.String())
	}
	res := runOnce(t, bin, append(append([]string{}, args...), "-checkpoint", dir, "-resume"), "2", 0)
	if res.exit != 0 {
		t.Fatalf("resume exited %d:\n%s", res.exit, res.stderr.String())
	}
	if !bytes.Equal(res.stdout.Bytes(), base.stdout.Bytes()) {
		gp, wp := saveMismatch(t, "interrupt", res.stdout.Bytes(), base.stdout.Bytes())
		t.Fatalf("resumed stdout diverges; see %s vs %s", gp, wp)
	}
}
