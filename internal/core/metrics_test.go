package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"goingwild/internal/metrics"
)

// stripJSON renders the deterministic portion of a snapshot — the bytes
// two runs of the same scan must agree on.
func stripJSON(t *testing.T, reg *metrics.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.Snapshot().StripTiming().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosMetricsSideChannelAndReproducible is the end-to-end contract
// for the metrics layer, per profile:
//
//  1. Side channel: the pipeline summary renders byte-identically with
//     and without a registry attached — observability cannot perturb
//     results.
//  2. Reproducible: the timing-stripped snapshot is byte-identical
//     across repeated runs and across a GOMAXPROCS flip.
//  3. Attributable: each profile's snapshot shows exactly the
//     pathologies that profile injects — hostile garbles, duplicates,
//     and rate-limits; flaky flaps; clean injects nothing.
func TestChaosMetricsSideChannelAndReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos pipeline four times per profile")
	}
	const order, week = 14, 3
	ctx := context.Background()
	for _, profile := range []string{"clean", "hostile", "flaky"} {
		t.Run(profile, func(t *testing.T) {
			bare, err := RunChaosPipeline(ctx, order, profile, week)
			if err != nil {
				t.Fatalf("bare run: %v", err)
			}
			regA := metrics.New()
			a, err := RunChaosPipelineMetrics(ctx, order, profile, week, regA)
			if err != nil {
				t.Fatalf("metrics run: %v", err)
			}
			if bare.Render() != a.Render() {
				t.Errorf("attaching a registry changed the results:\n--- bare\n%s--- with metrics\n%s",
					bare.Render(), a.Render())
			}

			regB := metrics.New()
			if _, err := RunChaosPipelineMetrics(ctx, order, profile, week, regB); err != nil {
				t.Fatalf("second metrics run: %v", err)
			}
			jsonA, jsonB := stripJSON(t, regA), stripJSON(t, regB)
			if !bytes.Equal(jsonA, jsonB) {
				t.Errorf("deterministic snapshot differs between runs:\n--- run 1\n%s--- run 2\n%s", jsonA, jsonB)
			}

			old := runtime.GOMAXPROCS(0)
			flipped := 1
			if old == 1 {
				flipped = 4
			}
			runtime.GOMAXPROCS(flipped)
			regC := metrics.New()
			_, err = RunChaosPipelineMetrics(ctx, order, profile, week, regC)
			runtime.GOMAXPROCS(old)
			if err != nil {
				t.Fatalf("run at GOMAXPROCS=%d: %v", flipped, err)
			}
			if jsonC := stripJSON(t, regC); !bytes.Equal(jsonA, jsonC) {
				t.Errorf("deterministic snapshot diverges at GOMAXPROCS=%d:\n--- base\n%s--- flipped\n%s",
					flipped, jsonA, jsonC)
			}

			s := regA.Snapshot()
			// The scan itself must be visible regardless of profile.
			if s.Counter("scanner.sweep.sent") == 0 {
				t.Error("scanner.sweep.sent = 0; the sweep left no trace")
			}
			if s.Counter("scanner.sweep.recv") == 0 {
				t.Error("scanner.sweep.recv = 0; responses left no trace")
			}
			if s.Counter("pipeline.stage.done") == 0 {
				t.Error("pipeline.stage.done = 0; the engine left no trace")
			}
			finished := s.Counter("pipeline.stage.done") + s.Counter("pipeline.stage.degraded") +
				s.Counter("pipeline.stage.failed")
			if got := s.Counter("pipeline.stage.started"); got != finished {
				t.Errorf("pipeline.stage.started = %d but %d stages finished", got, finished)
			}

			faults := []string{
				"wildnet.fault.drop.query", "wildnet.fault.drop.response",
				"wildnet.fault.drop.burst", "wildnet.fault.garbled",
				"wildnet.fault.duplicated", "wildnet.fault.ratelimit.refused",
				"wildnet.fault.ratelimit.dropped", "wildnet.fault.flap.suppressed",
			}
			switch profile {
			case "clean":
				// The 0.2% base loss still triggers retries, but the
				// fault layer itself must stay silent.
				for _, name := range faults {
					if got := s.Counter(name); got != 0 {
						t.Errorf("clean profile injected %s = %d, want 0", name, got)
					}
				}
			case "hostile":
				for _, name := range []string{
					"wildnet.fault.drop.query", "wildnet.fault.garbled",
					"wildnet.fault.duplicated", "wildnet.fault.ratelimit.refused",
				} {
					if s.Counter(name) == 0 {
						t.Errorf("hostile profile left %s = 0", name)
					}
				}
				if s.Counter("scanner.retry.rounds") == 0 || s.Counter("scanner.retry.spend") == 0 {
					t.Error("hostile profile ran without retransmissions")
				}
			case "flaky":
				if s.Counter("wildnet.fault.flap.suppressed") == 0 {
					t.Error("flaky profile left wildnet.fault.flap.suppressed = 0")
				}
			}
		})
	}
}
