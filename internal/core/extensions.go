package core

import (
	"context"

	"goingwild/internal/ampli"
	"goingwild/internal/domains"
	"goingwild/internal/netalyzr"
	"goingwild/internal/pipeline"
	"goingwild/internal/snoop"
)

// RunAmplification surveys ANY-query amplification; it is the ctx-less
// wrapper over RunAmplificationContext.
func (s *Study) RunAmplification(week int, name string) (*ampli.Survey, int, error) {
	return s.RunAmplificationContext(bgCtx, week, name)
}

// RunAmplificationContext surveys the population's ANY-query
// amplification potential (the DDoS framing of §1/§3; companion to the
// authors' 2014 amplification study): census stage, then ANY-survey
// stage.
func (s *Study) RunAmplificationContext(ctx context.Context, week int, name string) (*ampli.Survey, int, error) {
	var (
		resolvers []uint32
		survey    *ampli.Survey
	)
	eng := s.engine()
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &resolvers, nil))
	eng.MustAdd(pipeline.Stage{
		Name:  "any-survey",
		Needs: []string{"ipv4-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			survey = ampli.Run(ctx, s.Transport, resolvers, name)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "amplification responders", Value: survey.Responded}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, 0, err
	}
	return survey, len(resolvers), nil
}

// RunPopularity executes the minute-resolution cache probe; it is the
// ctx-less wrapper over RunPopularityContext.
func (s *Study) RunPopularity(week int) ([]snoop.PopularityEstimate, error) {
	return s.RunPopularityContext(bgCtx, week)
}

// RunPopularityContext executes the fine-grained minute-resolution cache
// probe (§2.6's suggested follow-up) over the resolvers the hourly study
// flagged as in use: census stage, then minute-snoop stage.
func (s *Study) RunPopularityContext(ctx context.Context, week int) ([]snoop.PopularityEstimate, error) {
	var (
		resolvers []uint32
		estimates []snoop.PopularityEstimate
	)
	eng := s.engine()
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &resolvers, nil))
	eng.MustAdd(pipeline.Stage{
		Name:  "minute-snoop",
		Needs: []string{"ipv4-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			cfg := snoop.DefaultPopularityConfig()
			cfg.Week = week
			// Index of "com" in the snooped TLD list keeps probe
			// sequence numbers aligned with the hourly study.
			for i, tld := range domains.SnoopedTLDs {
				if tld == cfg.TLD {
					cfg.TLDIdx = i
				}
			}
			var err error
			estimates, err = snoop.EstimatePopularity(ctx, s.Scanner, s.Transport, resolvers, cfg)
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "popularity estimates", Value: len(estimates)}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	return estimates, nil
}

// RunNetalyzr simulates the in-network volunteer-session study of Weaver
// et al. against the world's *closed* ISP resolvers — the complementary
// vantage §6 suggests combining with the open-resolver scans.
func (s *Study) RunNetalyzr(week, sessions int) *netalyzr.Study {
	s.SetWeek(week)
	isCDNAS := func(asn uint32) bool { return asn >= 7000 && asn < 7060 }
	return netalyzr.Run(s.World, netalyzr.Config{
		Sessions:       sessions,
		Seed:           s.Cfg.Seed ^ 0x4E7ABC,
		Week:           week,
		ProbeNX:        "ghoogle.com",
		ProbeDomains:   []string{"chase.com", "okcupid.com", domains.GroundTruth},
		TrustedResolve: s.TrustedResolve,
		SameNeighborhood: func(a, b uint32) bool {
			aa, ab := s.World.ASNOf(a), s.World.ASNOf(b)
			return aa == ab || (isCDNAS(aa) && isCDNAS(ab))
		},
	})
}
