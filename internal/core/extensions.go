package core

import (
	"goingwild/internal/ampli"
	"goingwild/internal/domains"
	"goingwild/internal/netalyzr"
	"goingwild/internal/snoop"
)

// RunAmplification surveys the population's ANY-query amplification
// potential (the DDoS framing of §1/§3; companion to the authors' 2014
// amplification study).
func (s *Study) RunAmplification(week int, name string) (*ampli.Survey, int, error) {
	res, err := s.SweepAt(week)
	if err != nil {
		return nil, 0, err
	}
	resolvers := res.NOERROR()
	return ampli.Run(s.Transport, resolvers, name), len(resolvers), nil
}

// RunPopularity executes the fine-grained minute-resolution cache probe
// (§2.6's suggested follow-up) over the resolvers the hourly study
// flagged as in use.
func (s *Study) RunPopularity(week int) ([]snoop.PopularityEstimate, error) {
	res, err := s.SweepAt(week)
	if err != nil {
		return nil, err
	}
	cfg := snoop.DefaultPopularityConfig()
	cfg.Week = week
	// Index of "com" in the snooped TLD list keeps probe sequence
	// numbers aligned with the hourly study.
	for i, tld := range domains.SnoopedTLDs {
		if tld == cfg.TLD {
			cfg.TLDIdx = i
		}
	}
	return snoop.EstimatePopularity(s.Scanner, s.Transport, res.NOERROR(), cfg), nil
}

// RunNetalyzr simulates the in-network volunteer-session study of Weaver
// et al. against the world's *closed* ISP resolvers — the complementary
// vantage §6 suggests combining with the open-resolver scans.
func (s *Study) RunNetalyzr(week, sessions int) *netalyzr.Study {
	s.SetWeek(week)
	isCDNAS := func(asn uint32) bool { return asn >= 7000 && asn < 7060 }
	return netalyzr.Run(s.World, netalyzr.Config{
		Sessions:       sessions,
		Seed:           s.Cfg.Seed ^ 0x4E7ABC,
		Week:           week,
		ProbeNX:        "ghoogle.com",
		ProbeDomains:   []string{"chase.com", "okcupid.com", domains.GroundTruth},
		TrustedResolve: s.TrustedResolve,
		SameNeighborhood: func(a, b uint32) bool {
			aa, ab := s.World.ASNOf(a), s.World.ASNOf(b)
			return aa == ab || (isCDNAS(aa) && isCDNAS(ab))
		},
	})
}
