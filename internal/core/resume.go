package core

import (
	"context"
	"fmt"
	"sync"

	"goingwild/internal/churn"
	"goingwild/internal/pipeline"
	"goingwild/internal/scanner"
)

// SeriesStore is the persistence seam between the study and the
// checkpoint layer: the study records progress documents through it and
// polls it for orderly-stop requests, without importing the on-disk
// format. checkpoint.Runner satisfies it; tests use in-memory fakes.
type SeriesStore interface {
	// Update stores v as the named document and persists a checkpoint
	// generation. It is called from scan workers mid-sweep, so it must
	// be safe under concurrency.
	Update(name string, v any) error
	// Fetch decodes the named document into v (ok=false when absent).
	Fetch(name string, v any) (bool, error)
	// Drop removes the named document from the state; the removal
	// reaches disk with the next persisted generation.
	Drop(name string)
	// CheckStop returns checkpoint.ErrStopped when an orderly stop has
	// been requested; scan code calls it right after a successful save
	// so the run unwinds with the just-saved state intact.
	CheckStop() error
}

// Checkpoint document names used by the resumable series. One store may
// back several studies only if their sections never run concurrently.
const (
	seriesDocName = "series"
	sweepDocName  = "series-sweep"
)

// SeriesCheckpoint is the committed cursor of a resumable weekly
// series: every epoch before Cursor is applied into Tracker, and the
// next sweep to run is week Cursor. It is saved by the stream's
// EpochCommit hook, so a crash between commits re-runs at most one
// week's apply (and the sweep itself resumes from sweepDocName).
type SeriesCheckpoint struct {
	Cursor  int                `json:"cursor"`
	Tracker churn.TrackerState `json:"tracker"`
}

// weekSweepState tags a scanner sweep checkpoint with the week it
// belongs to, so a resume can tell an in-flight week's progress from a
// stale document left by a crash racing the cursor commit.
type weekSweepState struct {
	Week int                     `json:"week"`
	Ck   scanner.SweepCheckpoint `json:"ck"`
}

// SweepAtResumeContext is SweepAtContext with crash-safe resume: same
// week clock, same seed schedule, same result, but sweep progress flows
// through rc (see scanner.SweepResumeContext). A nil rc degrades to the
// plain sweep.
func (s *Study) SweepAtResumeContext(ctx context.Context, week int, rc *scanner.ResumeControl) (*scanner.SweepResult, error) {
	s.SetWeek(week)
	return s.Scanner.SweepResumeContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+uint32(week)*7919, s.World.ScanBlacklist(), rc)
}

// RunWeeklySeriesResumeContext is the crash-safe twin of
// RunWeeklySeriesStreamContext: the identical epoch stream — same clock
// advance, same per-week seed schedule, same stage names, same applied
// deltas — threaded through a SeriesStore so the run can be killed at
// any instant and resumed to the exact same Series.
//
// Progress is recorded at two granularities. Mid-sweep, the scanner's
// rendezvous checkpoints land in sweepDocName (tagged with the week);
// after each epoch's deltas are applied, the EpochCommit hook persists
// the cursor and the tracker's frozen state in seriesDocName. On entry,
// the store is consulted: a committed cursor skips the finished weeks
// entirely (the tracker resumes from its frozen aggregates, and
// RunEpochsFrom re-enters the stream at the cursor), and a sweep
// document for the in-flight week resumes that sweep from its last
// rendezvous. A sweep document for an already-committed week — a crash
// landed between the epoch commit and the next generation — is simply
// ignored: replaying a week's sweep from scratch is deterministic, so
// dropped progress costs time, never bytes.
//
// A nil store degrades to RunWeeklySeriesStreamContext.
func (s *Study) RunWeeklySeriesResumeContext(ctx context.Context, store SeriesStore, live func(EpochView)) (*churn.Series, error) {
	if store == nil {
		return s.RunWeeklySeriesStreamContext(ctx, live)
	}
	var ck SeriesCheckpoint
	resumed, err := store.Fetch(seriesDocName, &ck)
	if err != nil {
		return nil, err
	}
	var tracker *churn.Tracker
	if resumed {
		if ck.Cursor < 0 || ck.Cursor > s.Cfg.Weeks {
			return nil, fmt.Errorf("core: series checkpoint cursor %d out of range for %d weeks", ck.Cursor, s.Cfg.Weeks)
		}
		tracker = churn.ResumeTracker(s.locator(), ck.Tracker)
	} else {
		tracker = churn.NewTracker(s.locator(), []int{0, s.Cfg.Weeks - 1})
	}
	cursor := ck.Cursor

	var ws weekSweepState
	var prevSweep *scanner.SweepCheckpoint
	if ok, err := store.Fetch(sweepDocName, &ws); err != nil {
		return nil, err
	} else if ok && ws.Week == cursor {
		prevSweep = &ws.Ck
	}

	em := pipeline.NewEpochMetrics(s.Cfg.Metrics)
	q := pipeline.NewQueue[churn.EpochDelta](epochQueueDepth)

	// The producer owns the queue, exactly as in the plain stream; its
	// Sweep closure routes each week through the resumable sweep so the
	// rendezvous checkpoints reach the store mid-week.
	prodCtx, cancelProd := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancelProd()
	var prodErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer q.Close()
		prodErr = churn.StreamWeekly(prodCtx, s.Scanner, s.Transport, churn.StudyConfig{
			Order:     s.Cfg.Order,
			Seed:      s.Cfg.ScanSeed,
			Weeks:     s.Cfg.Weeks,
			Blacklist: s.World.ScanBlacklist(),
			StartWeek: cursor,
			Prev:      tracker.Snapshot(),
			Sweep: func(ctx context.Context, week int) (*scanner.SweepResult, error) {
				rc := &scanner.ResumeControl{
					Save: func(sck *scanner.SweepCheckpoint) error {
						if err := store.Update(sweepDocName, weekSweepState{Week: week, Ck: *sck}); err != nil {
							return err
						}
						return store.CheckStop()
					},
				}
				if week == cursor {
					rc.Prev = prevSweep
				}
				return s.Scanner.SweepResumeContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+uint32(week), s.World.ScanBlacklist(), rc)
			},
		}, func(ctx context.Context, d churn.EpochDelta) error {
			return q.Put(ctx, d)
		})
	}()

	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "epoch-apply",
		RunEpoch: func(ctx context.Context, epoch int) ([]pipeline.Count, error) {
			d, ok, err := q.Get(ctx)
			if err != nil {
				return nil, err
			}
			if !ok {
				if prodErr != nil {
					return nil, prodErr
				}
				return nil, fmt.Errorf("core: epoch stream ended before epoch %d", epoch)
			}
			lag := q.Len()
			em.Lag.Set(int64(lag))
			em.DeltaSize.Observe(int64(len(d.Deltas)))
			obs, err := tracker.Apply(d)
			if err != nil {
				return nil, err
			}
			em.Epochs.Inc()
			if live != nil {
				live(EpochView{Obs: obs, Delta: d, Lag: lag})
			}
			return []pipeline.Count{
				{Name: "epoch deltas", Value: len(d.Deltas)},
				{Name: "week responders", Value: obs.Total},
			}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "series-final",
		Needs: []string{"epoch-apply"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			wg.Wait()
			if prodErr != nil {
				return nil, prodErr
			}
			// The producer is done, so no in-flight sweep save can race
			// this removal; it reaches disk with the caller's next
			// generation (typically the owning section's completion).
			store.Drop(sweepDocName)
			series := tracker.Series()
			counts := []pipeline.Count{{Name: "weeks scanned", Value: len(series.Weeks)}}
			if len(series.Weeks) > 0 {
				counts = append(counts, pipeline.Count{Name: "final-week responders", Value: series.Last().Total})
			}
			return counts, nil
		},
	})
	// Commit the cursor after each applied epoch: everything up to and
	// including this week is now derivable from the store alone. The
	// stop check runs after the save, so a first-interrupt run exits
	// with exactly this state on disk.
	eng.EpochCommit = func(ctx context.Context, epoch int) error {
		if err := store.Update(seriesDocName, SeriesCheckpoint{Cursor: epoch + 1, Tracker: tracker.State()}); err != nil {
			return err
		}
		return store.CheckStop()
	}
	if _, err := s.runEngineEpochsFrom(ctx, eng, cursor, s.Cfg.Weeks); err != nil {
		return nil, err
	}
	return tracker.Series(), nil
}
