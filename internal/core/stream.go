package core

import (
	"context"
	"fmt"
	"sync"

	"goingwild/internal/churn"
	"goingwild/internal/pipeline"
)

// epochQueueDepth bounds the delta queue between the sweep producer and
// the apply stage: the producer can run at most this many weekly scans
// ahead of the consumer before Put blocks. Small on purpose — the seam
// exists for backpressure, not buffering.
const epochQueueDepth = 2

// EpochView is the live per-epoch slice handed to the streaming
// callback after each week's deltas are applied: the week's full
// observation (for incremental Figure-1/Table-1 rendering), the delta
// batch that produced it, and the consumer's lag behind the producer at
// dequeue time.
type EpochView struct {
	Obs   *churn.WeekObservation
	Delta churn.EpochDelta
	Lag   int
}

// RunWeeklySeriesStream is the ctx-less wrapper over
// RunWeeklySeriesStreamContext.
func (s *Study) RunWeeklySeriesStream(live func(EpochView)) (*churn.Series, error) {
	return s.RunWeeklySeriesStreamContext(bgCtx, live)
}

// RunWeeklySeriesStreamContext performs the §2.2 longitudinal scans as
// an epoch stream instead of one batch stage: a producer goroutine runs
// the weekly sweeps (in exactly the batch path's clock and seed order,
// so the simulated world evolves identically) and feeds per-week delta
// batches through a bounded queue; the "epoch-apply" stage consumes one
// batch per epoch into a mergeable churn.Tracker; the "series-final"
// finalizer joins the producer and freezes the series. The returned
// Series is identical — byte for byte through every renderer — to what
// RunWeeklySeriesContext produces, which is the whole point: live
// per-epoch output without forking the results.
//
// live, when non-nil, is called after each epoch is applied, on the
// consumer side of the queue; like the pipeline observer it is a side
// channel and must not be used to feed results back in. Per-epoch lag
// and delta-size metrics land in Cfg.Metrics (pipeline.epoch.lag is
// Timing class; pipeline.delta.size and pipeline.epoch.done are
// deterministic).
func (s *Study) RunWeeklySeriesStreamContext(ctx context.Context, live func(EpochView)) (*churn.Series, error) {
	em := pipeline.NewEpochMetrics(s.Cfg.Metrics)
	q := pipeline.NewQueue[churn.EpochDelta](epochQueueDepth)
	tracker := churn.NewTracker(s.locator(), []int{0, s.Cfg.Weeks - 1})

	// The producer owns the queue: it alone calls Put and closes it when
	// the stream ends (normally or not). Its context is cancelled when
	// this function returns, so an abort on the consumer side — a failed
	// apply, a dead caller context — can never strand it blocked on Put.
	prodCtx, cancelProd := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancelProd()
	var prodErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer q.Close()
		prodErr = churn.StreamWeekly(prodCtx, s.Scanner, s.Transport, churn.StudyConfig{
			Order:     s.Cfg.Order,
			Seed:      s.Cfg.ScanSeed,
			Weeks:     s.Cfg.Weeks,
			Blacklist: s.World.ScanBlacklist(),
		}, func(ctx context.Context, d churn.EpochDelta) error {
			return q.Put(ctx, d)
		})
	}()

	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "epoch-apply",
		RunEpoch: func(ctx context.Context, epoch int) ([]pipeline.Count, error) {
			d, ok, err := q.Get(ctx)
			if err != nil {
				return nil, err
			}
			if !ok {
				// The queue's close happens-after the producer's error
				// write, so prodErr is settled here.
				if prodErr != nil {
					return nil, prodErr
				}
				return nil, fmt.Errorf("core: epoch stream ended before epoch %d", epoch)
			}
			lag := q.Len()
			em.Lag.Set(int64(lag))
			em.DeltaSize.Observe(int64(len(d.Deltas)))
			obs, err := tracker.Apply(d)
			if err != nil {
				return nil, err
			}
			em.Epochs.Inc()
			if live != nil {
				live(EpochView{Obs: obs, Delta: d, Lag: lag})
			}
			return []pipeline.Count{
				{Name: "epoch deltas", Value: len(d.Deltas)},
				{Name: "week responders", Value: obs.Total},
			}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "series-final",
		Needs: []string{"epoch-apply"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			// Every epoch is applied; the producer has nothing left to
			// send, so the join is immediate.
			wg.Wait()
			if prodErr != nil {
				return nil, prodErr
			}
			series := tracker.Series()
			counts := []pipeline.Count{{Name: "weeks scanned", Value: len(series.Weeks)}}
			if len(series.Weeks) > 0 {
				counts = append(counts, pipeline.Count{Name: "final-week responders", Value: series.Last().Total})
			}
			return counts, nil
		},
	})
	if _, err := s.runEngineEpochs(ctx, eng, s.Cfg.Weeks); err != nil {
		return nil, err
	}
	return tracker.Series(), nil
}

// runEngineEpochs is runEngine's streaming twin: it executes the engine
// in epoch mode and folds its degradation record into the study-wide
// Degraded list before handing the trace back.
func (s *Study) runEngineEpochs(ctx context.Context, eng *pipeline.Engine, epochs int) (*pipeline.Trace, error) {
	return s.runEngineEpochsFrom(ctx, eng, 0, epochs)
}

// runEngineEpochsFrom is runEngineEpochs entering the stream at a
// resumed epoch cursor.
func (s *Study) runEngineEpochsFrom(ctx context.Context, eng *pipeline.Engine, first, epochs int) (*pipeline.Trace, error) {
	trace, err := eng.RunEpochsFrom(ctx, first, epochs)
	for _, st := range trace.Degraded() {
		s.Degraded = append(s.Degraded, DegradedStage{Stage: st.Name, Err: st.Err.Error()})
	}
	return trace, err
}
