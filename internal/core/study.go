// Package core orchestrates the complete reproduction: the longitudinal
// resolver study of Section 2 (weekly scans, fingerprinting, churn, cache
// snooping) and the Figure-3 processing chain of Sections 3–4 (domain
// scans → prefiltering → data acquisition → clustering → labeling →
// case studies).
package core

import (
	"context"
	"fmt"

	"goingwild/internal/churn"
	"goingwild/internal/devices"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/fetch"
	"goingwild/internal/fingerprint"
	"goingwild/internal/geodb"
	"goingwild/internal/metrics"
	"goingwild/internal/pipeline"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
	"goingwild/internal/snoop"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

// bgCtx backs the ctx-less compatibility wrappers around the Context
// study entrypoints.
//
//lint:allow ctxhygiene sole Background escape for the ctx-less compatibility wrappers
var bgCtx = context.Background()

// Config parameterizes a study.
type Config struct {
	// Order is the simulated address-space width (the paper's Internet
	// is order 32; tests use 16–18, benches 20+).
	Order uint
	// Seed selects the simulated world.
	Seed uint64
	// ScanSeed seeds the scanner's LFSR permutations.
	ScanSeed uint32
	// Weeks is the longitudinal study length (the paper ran 55).
	Weeks int
	// Loss is the per-packet loss probability.
	Loss float64
	// Workers is the scanner's sender concurrency.
	Workers int
	// Shards runs every sweep as that many leapfrog shard workers
	// (scanner.Options.Shards). 0 or 1 scans unsharded; results are
	// identical either way (see the scanner's sharding contract).
	Shards int
	// Faults layers the deterministic fault model over the world
	// (bursty loss, latency, duplication, garbling, rate limiting,
	// flaps — see wildnet.FaultConfig). The zero value injects nothing
	// and keeps every output byte-identical to a fault-free study.
	Faults wildnet.FaultConfig
	// SweepRetries, RetryBudget, and Backoff tune the scanner's
	// adaptive retransmission (see scanner.Options). Zero values keep
	// the legacy census semantics.
	SweepRetries int
	RetryBudget  int
	Backoff      scanner.BackoffConfig
	// Metrics, when set, is threaded through every layer of the study —
	// the scanners (primary and secondary vantage), the world's fault
	// layer, and the pipeline engines — so one registry accumulates the
	// whole run. A pure side channel: study outputs are byte-identical
	// with and without it.
	Metrics *metrics.Registry
}

// DefaultConfig mirrors the paper's setup at a reduced scale.
func DefaultConfig(order uint) Config {
	return Config{
		Order:    order,
		Seed:     0x60176A11D,
		ScanSeed: 0x5EED,
		Weeks:    55,
		Loss:     0.002,
		Workers:  8,
	}
}

// ChaosProfileConfig returns DefaultConfig with a named chaos profile
// (wildnet.ChaosProfileNames) layered on, plus the retry tuning that
// lets the scanner ride over the injected faults: profiles with loss
// get sweep retransmission rounds so census counts stay within the
// chaos-test tolerances. The "clean" profile is exactly DefaultConfig.
func ChaosProfileConfig(order uint, profile string) (Config, error) {
	cfg := DefaultConfig(order)
	faults, err := wildnet.ChaosProfile(profile)
	if err != nil {
		return Config{}, err
	}
	cfg.Faults = faults
	if faults.Enabled() {
		cfg.SweepRetries = 2
	}
	return cfg, nil
}

// Study owns a world and the measurement apparatus pointed at it.
type Study struct {
	Cfg       Config
	World     *wildnet.World
	Transport *wildnet.MemTransport
	Scanner   *scanner.Scanner
	Web       *websim.Server
	Client    *fetch.Client

	// Observer, when set, receives every pipeline stage event of every
	// Run* method — start, done (with tuple counts and elapsed time),
	// failed. It is a side channel only: study results never depend on
	// it, so attaching a progress printer cannot perturb the
	// determinism contract.
	Observer pipeline.Observer
	// EngineClock times pipeline stages; nil means scanner.SystemClock.
	EngineClock scanner.Clock

	// Degraded accumulates the best-effort stages whose failures were
	// absorbed across every Run* call, in execution order. It is
	// derived from engine traces (never from the observer), so it is as
	// deterministic as the results themselves. Empty on a clean run.
	Degraded []DegradedStage

	trustedDNS uint32
	// Caches for the prefilter's measurement-channel lookups.
	trustedCache map[string]trustedEntry
	rdnsCache    map[uint32]rdnsEntry
}

type trustedEntry struct {
	addrs []uint32
	rcode dnswire.RCode
}

type rdnsEntry struct {
	name string
	ok   bool
}

// DegradedStage records one absorbed best-effort failure.
type DegradedStage struct {
	Stage string
	Err   string
}

// scanOpts is the one place the study's scanner tuning is assembled, so
// the primary and secondary-vantage scanners can never drift apart.
func (c Config) scanOpts() scanner.Options {
	return scanner.Options{
		Workers:      c.Workers,
		Shards:       c.Shards,
		Retries:      1,
		SettleDelay:  scanner.NoSettle,
		Backoff:      c.Backoff,
		RetryBudget:  c.RetryBudget,
		SweepRetries: c.SweepRetries,
		Metrics:      c.Metrics,
	}
}

// NewStudy builds the world and wires the measurement stack to it.
func NewStudy(cfg Config) (*Study, error) {
	wcfg := wildnet.DefaultConfig(cfg.Order)
	wcfg.Seed = cfg.Seed
	wcfg.Loss = cfg.Loss
	wcfg.Faults = cfg.Faults
	wcfg.Metrics = cfg.Metrics
	w, err := wildnet.NewWorld(wcfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	sc := scanner.New(tr, cfg.scanOpts())
	web := websim.New(w, wildnet.At(0))
	s := &Study{
		Cfg:          cfg,
		World:        w,
		Transport:    tr,
		Scanner:      sc,
		Web:          web,
		trustedDNS:   w.RoleAddr(wildnet.RoleTrustedDNS, 0),
		trustedCache: map[string]trustedEntry{},
		rdnsCache:    map[uint32]rdnsEntry{},
	}
	s.Client = fetch.NewClient(web, s.resolveAt)
	return s, nil
}

// Close releases the transport.
func (s *Study) Close() error { return s.Transport.Close() }

// SetWeek moves both the network and the application layer to a study
// week.
func (s *Study) SetWeek(week int) {
	s.Transport.SetTime(wildnet.At(week))
	s.Web.SetTime(wildnet.At(week))
}

// TrustedResolve performs a cached A lookup at the team's trusted
// resolvers (a measurement channel, not world ground truth).
func (s *Study) TrustedResolve(name string) ([]uint32, dnswire.RCode) {
	if e, ok := s.trustedCache[name]; ok {
		return e.addrs, e.rcode
	}
	addrs, rcode, ok := s.Scanner.LookupA(s.trustedDNS, name)
	if !ok {
		// One retry; the trusted path should be reliable.
		addrs, rcode, ok = s.Scanner.LookupA(s.trustedDNS, name)
		if !ok {
			rcode = dnswire.RCodeServFail
		}
	}
	s.trustedCache[name] = trustedEntry{addrs: addrs, rcode: rcode}
	return addrs, rcode
}

// RDNS resolves an address's PTR record through the trusted resolvers.
func (s *Study) RDNS(ip uint32) (string, bool) {
	if e, ok := s.rdnsCache[ip]; ok {
		return e.name, e.ok
	}
	name, ok := s.Scanner.LookupPTR(s.trustedDNS, ip)
	if !ok {
		name, ok = s.Scanner.LookupPTR(s.trustedDNS, ip)
	}
	s.rdnsCache[ip] = rdnsEntry{name: name, ok: ok}
	return name, ok
}

// resolveAt resolves a name at an arbitrary resolver (redirect chasing in
// the acquisition stage).
func (s *Study) resolveAt(resolver uint32, name string) ([]uint32, bool) {
	addrs, rcode, ok := s.Scanner.LookupA(resolver, name)
	return addrs, ok && rcode == dnswire.RCodeNoError && len(addrs) > 0
}

// locator adapts the registry for the churn package.
func (s *Study) locator() churn.Locator {
	return func(u uint32) (string, geodb.RIR) {
		loc := s.World.Geo().LookupU32(u)
		return loc.Country, loc.RIR
	}
}

// engine builds a stage engine wired to the study's observer and clock,
// teeing stage events into the metrics registry when one is attached.
// Every Run* method composes its work as stages of such an engine.
func (s *Study) engine() *pipeline.Engine {
	return pipeline.New(s.EngineClock,
		pipeline.TeeObservers(s.Observer, pipeline.MetricsObserver(s.Cfg.Metrics)))
}

// runEngine executes an engine and folds its degradation record into
// the study-wide Degraded list before handing the trace back.
func (s *Study) runEngine(ctx context.Context, eng *pipeline.Engine) (*pipeline.Trace, error) {
	trace, err := eng.Run(ctx)
	for _, st := range trace.Degraded() {
		s.Degraded = append(s.Degraded, DegradedStage{Stage: st.Name, Err: st.Err.Error()})
	}
	return trace, err
}

// sweepStage is the shared "❶ full IPv4 scan" stage: it sweeps the
// space at the given week and hands the NOERROR population to *resolvers
// (and, when total is non-nil, the responder total to *total).
func (s *Study) sweepStage(name string, week int, resolvers *[]uint32, total *int) pipeline.Stage {
	return pipeline.Stage{
		Name: name,
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			res, err := s.SweepAtContext(ctx, week)
			if err != nil {
				return nil, err
			}
			*resolvers = res.NOERROR()
			if total != nil {
				*total = res.Total()
			}
			return []pipeline.Count{
				{Name: "1-ipv4-scan responders", Value: res.Total()},
				{Name: "1-noerror resolvers", Value: len(*resolvers)},
			}, nil
		},
	}
}

// RunWeeklySeries performs the §2.2 longitudinal scans; it is the
// ctx-less wrapper over RunWeeklySeriesContext.
func (s *Study) RunWeeklySeries() (*churn.Series, error) {
	return s.RunWeeklySeriesContext(bgCtx)
}

// RunWeeklySeriesContext performs the §2.2 longitudinal scans (Figure 1
// and, via the retained endpoints, Tables 1–2) as a one-stage pipeline.
func (s *Study) RunWeeklySeriesContext(ctx context.Context) (*churn.Series, error) {
	var series *churn.Series
	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "weekly-scans",
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			var err error
			series, err = churn.RunWeekly(ctx, s.Scanner, s.Transport, s.locator(), churn.StudyConfig{
				Order:       s.Cfg.Order,
				Seed:        s.Cfg.ScanSeed,
				Weeks:       s.Cfg.Weeks,
				Blacklist:   s.World.ScanBlacklist(),
				RetainWeeks: []int{0, s.Cfg.Weeks - 1},
			})
			if err != nil {
				return nil, err
			}
			counts := []pipeline.Count{{Name: "weeks scanned", Value: len(series.Weeks)}}
			if len(series.Weeks) > 0 {
				counts = append(counts, pipeline.Count{Name: "final-week responders", Value: series.Last().Total})
			}
			return counts, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	return series, nil
}

// SweepAt runs a single Internet-wide scan at a given week; it is the
// ctx-less wrapper over SweepAtContext.
func (s *Study) SweepAt(week int) (*scanner.SweepResult, error) {
	return s.SweepAtContext(bgCtx, week)
}

// SweepAtContext runs a single Internet-wide scan at a given week.
func (s *Study) SweepAtContext(ctx context.Context, week int) (*scanner.SweepResult, error) {
	s.SetWeek(week)
	return s.Scanner.SweepContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+uint32(week)*7919, s.World.ScanBlacklist())
}

// SweepShardAt runs shard `shard` of `of` of the week's Internet-wide
// scan — the same permutation SweepAt walks, decimated by leapfrog — so
// separate processes can each cover one shard and cmd/wildmerge can
// recombine their artifacts into the unsharded census.
func (s *Study) SweepShardAt(ctx context.Context, week, shard, of int) (*scanner.SweepResult, error) {
	s.SetWeek(week)
	return s.Scanner.SweepShardContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+uint32(week)*7919, s.World.ScanBlacklist(), shard, of)
}

// RunCohortStudy tracks the week-0 responders; it is the ctx-less
// wrapper over RunCohortStudyContext.
func (s *Study) RunCohortStudy(weeks int) (*churn.CohortStudy, error) {
	return s.RunCohortStudyContext(bgCtx, weeks)
}

// RunCohortStudyContext tracks the week-0 responders (Figure 2, §2.5):
// a week-0 census stage feeding a weekly re-probe stage.
func (s *Study) RunCohortStudyContext(ctx context.Context, weeks int) (*churn.CohortStudy, error) {
	var (
		cohort []uint32
		study  *churn.CohortStudy
	)
	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "week0-scan",
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			res, err := s.SweepAtContext(ctx, 0)
			if err != nil {
				return nil, err
			}
			cohort = make([]uint32, 0, res.Total())
			for _, r := range res.Responders {
				cohort = append(cohort, r.Addr)
			}
			return []pipeline.Count{{Name: "cohort members", Value: len(cohort)}}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "cohort-track",
		Needs: []string{"week0-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			var err error
			study, err = churn.RunCohort(ctx, s.Scanner, s.Transport, cohort, weeks, s.trustedDNS)
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "final survivors", Value: len(study.Survivors)}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	return study, nil
}

// RunChaos performs the CHAOS fingerprinting scan; it is the ctx-less
// wrapper over RunChaosContext.
func (s *Study) RunChaos(week int) (*fingerprint.ChaosSurvey, int, error) {
	return s.RunChaosContext(bgCtx, week)
}

// RunChaosContext performs the CHAOS fingerprinting scan of §2.4
// (Table 3): census stage, then version-query stage.
func (s *Study) RunChaosContext(ctx context.Context, week int) (*fingerprint.ChaosSurvey, int, error) {
	var (
		resolvers []uint32
		survey    *fingerprint.ChaosSurvey
	)
	eng := s.engine()
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &resolvers, nil))
	eng.MustAdd(pipeline.Stage{
		Name:  "chaos-scan",
		Needs: []string{"ipv4-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			chaos, err := s.Scanner.ScanChaosContext(ctx, resolvers)
			if err != nil {
				return nil, err
			}
			survey = fingerprint.SurveyChaos(chaos)
			return []pipeline.Count{{Name: "chaos responders", Value: chaos.Responded()}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, 0, err
	}
	return survey, len(resolvers), nil
}

// bannerSource adapts the world's TCP services for the fingerprinter.
type bannerSource struct {
	w *wildnet.World
	t wildnet.Time
}

// Banner implements fingerprint.BannerSource.
func (b bannerSource) Banner(addr uint32, proto devices.Proto) (string, bool) {
	return b.w.ServiceBanner(addr, proto, b.t)
}

// RunDevices performs the device fingerprinting; it is the ctx-less
// wrapper over RunDevicesContext.
func (s *Study) RunDevices(week int) (*fingerprint.DeviceSurvey, error) {
	return s.RunDevicesContext(bgCtx, week)
}

// RunDevicesContext performs the device fingerprinting of §2.4
// (Table 4): census stage, then banner-grab stage.
func (s *Study) RunDevicesContext(ctx context.Context, week int) (*fingerprint.DeviceSurvey, error) {
	var (
		resolvers []uint32
		survey    *fingerprint.DeviceSurvey
	)
	eng := s.engine()
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &resolvers, nil))
	// Banner grabbing is auxiliary to the DNS study: a failure here
	// degrades Table 4 to zeros instead of killing the whole run.
	eng.MustAdd(pipeline.Stage{
		Name:   "device-fingerprint",
		Needs:  []string{"ipv4-scan"},
		Policy: pipeline.BestEffort,
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			survey = fingerprint.SurveyDevices(bannerSource{s.World, wildnet.At(week)}, resolvers)
			return []pipeline.Count{{Name: "banner responders", Value: survey.Responsive}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	if survey == nil {
		// Degraded: an empty survey keeps every renderer total-safe.
		survey = &fingerprint.DeviceSurvey{Scanned: len(resolvers)}
	}
	return survey, nil
}

// RunUtilization performs the cache-snooping study; it is the ctx-less
// wrapper over RunUtilizationContext.
func (s *Study) RunUtilization(week int) (*snoop.Result, error) {
	return s.RunUtilizationContext(bgCtx, week)
}

// RunUtilizationContext performs the cache-snooping study of §2.6:
// census stage, then the 36-hour snooping stage.
func (s *Study) RunUtilizationContext(ctx context.Context, week int) (*snoop.Result, error) {
	var (
		resolvers []uint32
		result    *snoop.Result
	)
	eng := s.engine()
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &resolvers, nil))
	// Cache snooping is a 36-hour side study (§2.6): a failure degrades
	// the utilization table instead of killing the run.
	eng.MustAdd(pipeline.Stage{
		Name:   "cache-snoop",
		Needs:  []string{"ipv4-scan"},
		Policy: pipeline.BestEffort,
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			cfg := snoop.DefaultConfig(domains.SnoopedTLDs)
			cfg.Week = week
			var err error
			result, err = snoop.Run(ctx, s.Scanner, s.Transport, resolvers, cfg)
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{
				{Name: "snoop responders", Value: result.Responded},
				{Name: "in-use resolvers", Value: result.Counts[snoop.ClassInUse]},
			}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	if result == nil {
		// Degraded: an empty result keeps every renderer total-safe.
		result = &snoop.Result{
			Scanned:  len(resolvers),
			Counts:   map[snoop.Class]int{},
			Verdicts: map[uint32]snoop.Class{},
		}
	}
	return result, nil
}

// VerificationResult compares the primary and secondary vantage scans
// (§2.2: the secondary /8 vantage reveals networks blocking the primary).
type VerificationResult struct {
	Primary, Secondary   int
	OnlySecondary        int
	OnlySecondaryByRCode map[dnswire.RCode]int
	MissedNOERRORShare   float64
}

// RunVerification executes the secondary-vantage verification scan; it
// is the ctx-less wrapper over RunVerificationContext.
func (s *Study) RunVerification(week int) (*VerificationResult, error) {
	return s.RunVerificationContext(bgCtx, week)
}

// RunVerificationContext executes the secondary-vantage verification
// scan: the primary and secondary censuses run as independent stages, a
// comparison stage joins them.
func (s *Study) RunVerificationContext(ctx context.Context, week int) (*VerificationResult, error) {
	var (
		primary, secondary *scanner.SweepResult
		out                *VerificationResult
	)
	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "primary-scan",
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			var err error
			primary, err = s.SweepAtContext(ctx, week)
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "primary responders", Value: primary.Total()}}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name: "secondary-scan",
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			tr2 := wildnet.NewMemTransport(s.World, wildnet.VantageSecondary)
			defer tr2.Close()
			tr2.SetTime(wildnet.At(week))
			sc2 := scanner.New(tr2, s.Cfg.scanOpts())
			var err error
			secondary, err = sc2.SweepContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+uint32(week)*7919+1, s.World.ScanBlacklist())
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "secondary responders", Value: secondary.Total()}}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "compare-vantages",
		Needs: []string{"primary-scan", "secondary-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			primarySet := make(map[uint32]bool, primary.Total())
			for _, r := range primary.Responders {
				primarySet[r.Addr] = true
			}
			out = &VerificationResult{
				Primary:              primary.Total(),
				Secondary:            secondary.Total(),
				OnlySecondaryByRCode: map[dnswire.RCode]int{},
			}
			var missedNOERROR int
			for _, r := range secondary.Responders {
				if primarySet[r.Addr] {
					continue
				}
				out.OnlySecondary++
				out.OnlySecondaryByRCode[r.RCode]++
				if r.RCode == dnswire.RCodeNoError {
					missedNOERROR++
				}
			}
			if n := primary.ByRCode[dnswire.RCodeNoError]; n > 0 {
				out.MissedNOERRORShare = float64(missedNOERROR) / float64(n)
			}
			return []pipeline.Count{{Name: "only-secondary responders", Value: out.OnlySecondary}}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	return out, nil
}

// SecondaryAliveSet probes the full space from the secondary vantage;
// it is the ctx-less wrapper over SecondaryAliveSetContext.
func (s *Study) SecondaryAliveSet(week int) (map[uint32]bool, error) {
	return s.SecondaryAliveSetContext(bgCtx, week)
}

// SecondaryAliveSetContext probes the full space from the secondary
// vantage and returns the responding set, for the vanished-network
// classification.
func (s *Study) SecondaryAliveSetContext(ctx context.Context, week int) (map[uint32]bool, error) {
	tr2 := wildnet.NewMemTransport(s.World, wildnet.VantageSecondary)
	defer tr2.Close()
	tr2.SetTime(wildnet.At(week))
	sc2 := scanner.New(tr2, s.Cfg.scanOpts())
	res, err := sc2.SweepContext(ctx, s.Cfg.Order, s.Cfg.ScanSeed+99, s.World.ScanBlacklist())
	if err != nil {
		return nil, err
	}
	out := make(map[uint32]bool, res.Total())
	for _, r := range res.Responders {
		out[r.Addr] = true
	}
	return out, nil
}

// ProbeCountryInjection reproduces the §4.2 succeeding experiment: DNS
// queries for name are sent to randomly chosen addresses of a country
// (most of which run no resolver); responses for the probed name without
// responses for a control name betray an in-transit injector like the
// Great Firewall. Address sampling uses the public geographic registry.
func (s *Study) ProbeCountryInjection(country, name string) bool {
	const samples = 24
	geo := s.World.Geo()
	src := prand32(s.Cfg.Seed ^ hashString64(country) ^ hashString64(name))
	hits := 0
	tried := 0
	for i := 0; tried < samples && i < samples*64; i++ {
		u := s.World.Mask(src())
		if geo.LookupU32(u).Country != country {
			continue
		}
		tried++
		if len(s.Scanner.Probe(u, name, dnswire.TypeA, dnswire.ClassIN)) == 0 {
			continue
		}
		// Control: a name no injector cares about must stay silent
		// from the same address (otherwise it is simply a resolver).
		if len(s.Scanner.Probe(u, domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)) == 0 {
			hits++
			if hits >= 2 {
				return true
			}
		}
	}
	return false
}

// prand32 returns a deterministic 32-bit stream for address sampling.
func prand32(seed uint64) func() uint32 {
	state := seed
	return func() uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32(state >> 32)
	}
}

func hashString64(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// PrefilterEnv builds the prefilter's measurement environment.
func (s *Study) PrefilterEnv() prefilter.Env {
	return prefilter.Env{
		TrustedResolve: s.TrustedResolve,
		RDNS:           s.RDNS,
		ASOf:           s.World.ASNOf,
		CertProbe: func(ip uint32, serverName string, sni bool) (prefilter.Cert, bool) {
			c, ok := s.Client.CertProbe(ip, serverName, sni)
			if !ok {
				return prefilter.Cert{}, false
			}
			return prefilter.Cert{
				Valid:      c.Valid,
				SelfSigned: c.SelfSigned,
				CommonName: c.CommonName,
				DNSNames:   c.DNSNames,
			}, true
		},
		TrustedCDNNames: []string{"static.cdn-global.example"},
	}
}
