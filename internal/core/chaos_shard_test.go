package core

import (
	"context"
	"runtime"
	"testing"

	"goingwild/internal/domains"
	"goingwild/internal/wildnet"
)

// chaosShardSummary runs the chaos pipeline (the RunChaosPipeline
// stages) with the census sweep split across m shard workers and
// returns the rendered summary.
func chaosShardSummary(t *testing.T, profile string, m int) string {
	t.Helper()
	cfg, err := ChaosProfileConfig(14, profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = m
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	sum := &ChaosSummary{Profile: profile, Week: 3}
	bl := s.World.ScanBlacklist()
	sum.GroundTruth = s.World.CountRespondingAt(wildnet.VantagePrimary, wildnet.At(3), bl.ContainsU32)
	sweep, err := s.SweepAtContext(ctx, 3)
	if err != nil {
		t.Fatalf("chaos %s shards=%d: sweep: %v", profile, m, err)
	}
	sum.SweepTotal = sweep.Total()
	survey, _, err := s.RunChaosContext(ctx, 3)
	if err != nil {
		t.Fatalf("chaos %s shards=%d: chaos scan: %v", profile, m, err)
	}
	sum.ChaosResponders = survey.Responded
	dom, err := s.RunDomainStudyContext(ctx, 3, []domains.Category{domains.Alexa})
	if err != nil {
		t.Fatalf("chaos %s shards=%d: domain chain: %v", profile, m, err)
	}
	sum.NoError = len(dom.Resolvers)
	sum.StageTrace = dom.StageTrace
	sum.Degraded = s.Degraded
	return sum.Render()
}

// TestChaosMatrixSharded pins the strongest form of the sharding
// contract: under every fault profile, the full pipeline with the
// census sweep split across four shard workers renders the exact
// summary the unsharded pipeline renders. This holds because fault
// draws are pure per (identity, window, payload, attempt) and the
// retransmission counter is keyed by destination — a destination
// belongs to exactly one shard, so concurrent shard workers cannot
// perturb each other's attempt counts (wildnet.attemptCounter).
func TestChaosMatrixSharded(t *testing.T) {
	for _, profile := range []string{"clean", "lossy", "hostile", "flaky"} {
		t.Run(profile, func(t *testing.T) {
			single := chaosShardSummary(t, profile, 1)
			sharded := chaosShardSummary(t, profile, 4)
			if single != sharded {
				t.Errorf("sharded chaos pipeline diverges from unsharded:\n--- shards=1\n%s--- shards=4\n%s", single, sharded)
			}
		})
	}
}

// TestChaosShardedSchedulerIndependent reruns the nastiest profile's
// sharded pipeline under a flipped GOMAXPROCS: the four shard workers
// schedule completely differently, the summary must not move a byte.
func TestChaosShardedSchedulerIndependent(t *testing.T) {
	base := chaosShardSummary(t, "hostile", 4)
	old := runtime.GOMAXPROCS(0)
	flipped := 1
	if old == 1 {
		flipped = 4
	}
	runtime.GOMAXPROCS(flipped)
	alt := chaosShardSummary(t, "hostile", 4)
	runtime.GOMAXPROCS(old)
	if base != alt {
		t.Errorf("sharded hostile summary diverges at GOMAXPROCS=%d:\n--- base\n%s--- flipped\n%s", flipped, base, alt)
	}
}
