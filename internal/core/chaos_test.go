package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"goingwild/internal/wildnet"
)

// chaosTolerance is the allowed |measured − planted| / planted census
// deviation per profile. The budgets come from the fault parameters:
// clean has no sweep retries, so its double-sided 0.2% base loss costs
// up to ~0.4%; the fault profiles run 2 retransmission rounds, leaving
// mostly the persistent burst windows (frozen for the duration of a
// fixed-time scan) and the tail of the rate-limit admission draws.
var chaosTolerance = map[string]float64{
	"clean":   0.0075,
	"lossy":   0.0100,
	"hostile": 0.0250,
	"flaky":   0.0150,
}

// TestChaosMatrix drives the full pipeline under every chaos profile at
// order 16 and asserts the robustness contract: no errors, census counts
// within tolerance of the planted ground truth, and byte-identical
// summaries across repeated runs and across a GOMAXPROCS change.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is a long test")
	}
	const order, week = 16, 3
	ctx := context.Background()
	for _, profile := range wildnet.ChaosProfileNames() {
		t.Run(profile, func(t *testing.T) {
			a, err := RunChaosPipeline(ctx, order, profile, week)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			if a.GroundTruth == 0 {
				t.Fatal("planted population is empty; the tolerance check is vacuous")
			}
			if miss := a.MissShare(); math.Abs(miss) > chaosTolerance[profile] {
				t.Errorf("sweep %d vs planted %d: miss share %.4f exceeds %.4f",
					a.SweepTotal, a.GroundTruth, miss, chaosTolerance[profile])
			}
			if profile == "clean" && len(a.Degraded) > 0 {
				t.Errorf("clean run degraded stages: %v", a.Degraded)
			}

			b, err := RunChaosPipeline(ctx, order, profile, week)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if a.Render() != b.Render() {
				t.Errorf("summary not reproducible across runs:\n--- run 1\n%s--- run 2\n%s", a.Render(), b.Render())
			}

			// The determinism contract holds across scheduler shapes:
			// flip GOMAXPROCS and demand the same bytes.
			old := runtime.GOMAXPROCS(0)
			flipped := 1
			if old == 1 {
				flipped = 4
			}
			runtime.GOMAXPROCS(flipped)
			c, err := RunChaosPipeline(ctx, order, profile, week)
			runtime.GOMAXPROCS(old)
			if err != nil {
				t.Fatalf("run at GOMAXPROCS=%d: %v", flipped, err)
			}
			if a.Render() != c.Render() {
				t.Errorf("summary diverges at GOMAXPROCS=%d:\n--- base\n%s--- flipped\n%s", flipped, a.Render(), c.Render())
			}
		})
	}
}

// TestDomainStudyReportDeterministicUnderFaults pins classification-level
// determinism under a chaos profile, which the matrix above (comparing
// stage counts and sweep totals) is too coarse to see. The regression it
// guards: with faults on, every probe advances the transport's
// retransmission counter, so any map-order probe sequence — here the
// country-injection probes issued while labeling tuples — makes label
// shares drift between identical runs.
func TestDomainStudyReportDeterministicUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Figure-3 chain twice")
	}
	run := func() string {
		cfg, err := ChaosProfileConfig(14, "hostile")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Weeks = 4
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.RunDomainStudy(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		// fmt sorts map keys, so this is a canonical dump of the
		// label matrix and the per-tuple labels.
		return fmt.Sprintf("%+v\n%+v\n%+v", res.Report.Table5.Cells, res.Report.TupleLabels, res.Report.ModClusterSizes)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("classification report differs between identical hostile runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
