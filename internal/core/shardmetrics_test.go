package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"goingwild/internal/metrics"
	"goingwild/internal/scanner"
)

// runShardedSweep executes one Shards=m sweep with a fresh study and
// registry and returns both.
func runShardedSweep(t *testing.T, m int) (*scanner.SweepResult, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	cfg := DefaultConfig(14)
	cfg.Shards = m
	cfg.Metrics = reg
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.SweepAt(3)
	if err != nil {
		t.Fatal(err)
	}
	return res, reg
}

// TestShardMetricsAccounting pins the per-shard observability the
// sharded sweep publishes: scan.shard.<i>.sent gauges that sum to the
// probed count, scan.shard.<i>.recv gauges that sum to the responder
// count, and a populated transport.batch.size histogram.
func TestShardMetricsAccounting(t *testing.T) {
	const m = 4
	res, reg := runShardedSweep(t, m)
	s := reg.Snapshot()
	var sent, recv int64
	for i := 0; i < m; i++ {
		gs := s.Gauge(fmt.Sprintf("scan.shard.%d.sent", i))
		gr := s.Gauge(fmt.Sprintf("scan.shard.%d.recv", i))
		if gs <= 0 {
			t.Errorf("scan.shard.%d.sent = %d, want > 0", i, gs)
		}
		sent += gs
		recv += gr
	}
	if uint64(sent) != res.Probed {
		t.Errorf("shard sent gauges sum to %d, sweep probed %d", sent, res.Probed)
	}
	if int(recv) != res.Total() {
		t.Errorf("shard recv gauges sum to %d, sweep has %d responders", recv, res.Total())
	}
	if g := s.Gauge(fmt.Sprintf("scan.shard.%d.sent", m)); g != 0 {
		t.Errorf("gauge for nonexistent shard %d is %d", m, g)
	}
	found := false
	for _, h := range s.Histograms {
		if h.Name != "transport.batch.size" {
			continue
		}
		found = true
		if h.Count == 0 {
			t.Error("transport.batch.size recorded no batches")
		}
	}
	if !found {
		t.Fatal("transport.batch.size histogram missing from snapshot")
	}
}

// TestShardMetricsDeterministic: the timing-stripped snapshot of a
// sharded sweep — shard gauges, batch-size histogram and all — is
// byte-identical across repeated runs and across a GOMAXPROCS flip,
// even though the m shard workers race freely at runtime.
func TestShardMetricsDeterministic(t *testing.T) {
	strip := func(reg *metrics.Registry) []byte {
		var buf bytes.Buffer
		if err := reg.Snapshot().StripTiming().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	_, regA := runShardedSweep(t, 4)
	_, regB := runShardedSweep(t, 4)
	a, b := strip(regA), strip(regB)
	if !bytes.Equal(a, b) {
		t.Errorf("sharded sweep snapshot differs between runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}

	old := runtime.GOMAXPROCS(0)
	flipped := 1
	if old == 1 {
		flipped = 4
	}
	runtime.GOMAXPROCS(flipped)
	_, regC := runShardedSweep(t, 4)
	runtime.GOMAXPROCS(old)
	if c := strip(regC); !bytes.Equal(a, c) {
		t.Errorf("sharded sweep snapshot diverges at GOMAXPROCS=%d:\n--- base\n%s--- flipped\n%s", flipped, a, c)
	}
}
