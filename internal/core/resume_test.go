package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// memStore is an in-memory SeriesStore that snapshots its documents on
// every Update — the JSON round-trip stands in for the on-disk
// checkpoint, and the per-save history lets the test "crash" a run at
// any persisted generation and resume a fresh study from that exact
// state. stopAt, when >0, makes the save with that ordinal request an
// orderly stop (the CheckStop after it returns errStopRun), modeling a
// first-SIGINT drain.
type memStore struct {
	mu     sync.Mutex
	docs   map[string]json.RawMessage
	saves  int
	hist   []map[string]json.RawMessage
	stopAt int
}

var errStopRun = errors.New("stop requested")

func newMemStore() *memStore {
	return &memStore{docs: map[string]json.RawMessage{}}
}

func (m *memStore) snapshotLocked() map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(m.docs))
	for k, v := range m.docs {
		out[k] = v
	}
	return out
}

func (m *memStore) Update(name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.docs[name] = b
	m.saves++
	m.hist = append(m.hist, m.snapshotLocked())
	return nil
}

func (m *memStore) Fetch(name string, v any) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.docs[name]
	if !ok {
		return false, nil
	}
	return true, json.Unmarshal(b, v)
}

func (m *memStore) Drop(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.docs, name)
}

func (m *memStore) CheckStop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopAt > 0 && m.saves >= m.stopAt {
		return errStopRun
	}
	return nil
}

// restoredFrom builds a store primed with one historical generation, as
// a resume after a SIGKILL at that save would see it.
func restoredFrom(gen map[string]json.RawMessage) *memStore {
	s := newMemStore()
	for k, v := range gen {
		s.docs[k] = v
	}
	return s
}

func resumeStudy(t *testing.T, order uint, profile string, shards int) *Study {
	t.Helper()
	cfg, err := ChaosProfileConfig(order, profile)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Weeks = 4
	cfg.Shards = shards
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSeriesResumeFromEveryGeneration is the core-layer crash-exactness
// proof: run the resumable weekly series once uninterrupted, recording
// every persisted checkpoint generation, then for a spread of those
// generations build a fresh world and resume from that state alone.
// Every resumed run must produce the identical Series — mid-sweep
// generations, committed-cursor generations, and the torn window where
// a sweep document outlives its week's commit all included.
func TestSeriesResumeFromEveryGeneration(t *testing.T) {
	for _, profile := range []string{"clean", "hostile"} {
		t.Run(profile, func(t *testing.T) {
			base := resumeStudy(t, 14, profile, 2)
			store := newMemStore()
			want, err := base.RunWeeklySeriesResumeContext(context.Background(), store, nil)
			if err != nil {
				t.Fatal(err)
			}

			// The plain stream path must be unaffected by the resume plumbing.
			plain := resumeStudy(t, 14, profile, 2)
			got, err := plain.RunWeeklySeriesStreamContext(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("resumable series differs from the plain stream series")
			}

			if len(store.hist) < 8 {
				t.Fatalf("only %d checkpoint generations recorded; need a real spread to test", len(store.hist))
			}
			midSweep, committed := 0, 0
			step := len(store.hist)/12 + 1
			for gen := 0; gen < len(store.hist); gen += step {
				snap := store.hist[gen]
				if _, ok := snap[sweepDocName]; ok {
					midSweep++
				}
				if _, ok := snap[seriesDocName]; ok {
					committed++
				}
				s := resumeStudy(t, 14, profile, 2)
				res, err := s.RunWeeklySeriesResumeContext(context.Background(), restoredFrom(snap), nil)
				if err != nil {
					t.Fatalf("resume from generation %d: %v", gen, err)
				}
				if !reflect.DeepEqual(want, res) {
					t.Fatalf("resume from generation %d diverged from the uninterrupted series", gen)
				}
			}
			if midSweep == 0 || committed == 0 {
				t.Fatalf("sampled generations covered mid-sweep=%d committed=%d; need both kinds", midSweep, committed)
			}
		})
	}
}

// TestSeriesResumeAfterStop covers the orderly first-interrupt path: a
// stop request surfaces from a mid-run CheckStop, the run unwinds with
// its state saved, and a resume from the surviving store completes to
// the uninterrupted result.
func TestSeriesResumeAfterStop(t *testing.T) {
	base := resumeStudy(t, 14, "hostile", 1)
	want, err := base.RunWeeklySeriesResumeContext(context.Background(), newMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}

	store := newMemStore()
	store.stopAt = 5
	stopped := resumeStudy(t, 14, "hostile", 1)
	if _, err := stopped.RunWeeklySeriesResumeContext(context.Background(), store, nil); !errors.Is(err, errStopRun) {
		t.Fatalf("stopped run returned %v, want the stop error", err)
	}
	store.stopAt = 0

	resumed := resumeStudy(t, 14, "hostile", 1)
	res, err := resumed.RunWeeklySeriesResumeContext(context.Background(), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Fatal("post-stop resume diverged from the uninterrupted series")
	}
	if _, ok := store.docs[sweepDocName]; ok {
		t.Fatal("completed series left a sweep document behind")
	}
}

// TestSeriesResumeAfterCompletion pins the resumed-after-done case: a
// store whose cursor already equals Weeks runs no sweeps and returns
// the checkpointed series as-is.
func TestSeriesResumeAfterCompletion(t *testing.T) {
	base := resumeStudy(t, 14, "clean", 1)
	store := newMemStore()
	want, err := base.RunWeeklySeriesResumeContext(context.Background(), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	again := resumeStudy(t, 14, "clean", 1)
	res, err := again.RunWeeklySeriesResumeContext(context.Background(), store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Fatal("resume after completion altered the series")
	}
}

// TestSeriesResumeRejectsBadCursor guards the fingerprint seam: a
// checkpoint whose cursor exceeds the configured week count is a config
// mismatch, not a silent truncation.
func TestSeriesResumeRejectsBadCursor(t *testing.T) {
	store := newMemStore()
	if err := store.Update(seriesDocName, SeriesCheckpoint{Cursor: 99}); err != nil {
		t.Fatal(err)
	}
	s := resumeStudy(t, 14, "clean", 1)
	if _, err := s.RunWeeklySeriesResumeContext(context.Background(), store, nil); err == nil {
		t.Fatal("out-of-range cursor accepted")
	} else if want := fmt.Sprintf("cursor %d out of range", 99); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention the cursor", err)
	}
}
