package core

import (
	"math"
	"testing"

	"goingwild/internal/churn"
	"goingwild/internal/classify"
	"goingwild/internal/dnssec"
	"goingwild/internal/dnswire"
	"goingwild/internal/domains"
	"goingwild/internal/pipeline"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func newStudy(t testing.TB, order uint) *Study {
	t.Helper()
	s, err := NewStudy(DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTrustedResolveAndRDNSChannels(t *testing.T) {
	s := newStudy(t, 16)
	addrs, rc := s.TrustedResolve(domains.GroundTruth)
	if rc != 0 || len(addrs) == 0 {
		t.Fatalf("trusted resolve GT: %v rc=%v", addrs, rc)
	}
	// Cache must return identical results.
	addrs2, _ := s.TrustedResolve(domains.GroundTruth)
	if addrs2[0] != addrs[0] {
		t.Error("trusted cache inconsistent")
	}
	// rDNS round trip through the measurement channel.
	found := false
	for u := uint32(50); u < 1<<16 && !found; u += 97 {
		if name, ok := s.RDNS(u); ok && name != "" {
			found = true
		}
	}
	if !found {
		t.Error("no rDNS resolvable through trusted channel")
	}
}

func TestVerificationScanFindsBlockedNetworks(t *testing.T) {
	s := newStudy(t, 17)
	v, err := s.RunVerification(50)
	if err != nil {
		t.Fatal(err)
	}
	if v.Primary == 0 || v.Secondary == 0 {
		t.Fatalf("empty scans: %+v", v)
	}
	// At week 50 the fated networks block the primary vantage, so the
	// secondary must see extra responders...
	if v.OnlySecondary == 0 {
		t.Error("verification scan found no blocked networks")
	}
	// ...but the missed NOERROR share stays small (<1% in the paper;
	// a few percent at this scale).
	if v.MissedNOERRORShare > 0.08 {
		t.Errorf("missed NOERROR share = %.3f, want small", v.MissedNOERRORShare)
	}
}

func TestDomainStudySmallCategories(t *testing.T) {
	s := newStudy(t, 17)
	res, err := s.RunDomainStudy(50, []domains.Category{domains.Adult, domains.Gambling, domains.NX})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resolvers) < 300 {
		t.Fatalf("only %d resolvers", len(res.Resolvers))
	}

	// Prefiltering shape (§4.1): existing domains mostly legitimate;
	// NX names mostly empty; unexpected a small minority except NX.
	var nxUnexpected, adultLegit float64
	for _, ds := range res.Pre.PerDomain {
		d, ok := domains.ByName(ds.Name)
		if !ok {
			continue
		}
		switch {
		case d.Category == domains.NX && ds.Name == "ghoogle.com":
			nxUnexpected = ds.Share(prefilter.ClassUnexpected)
		case ds.Name == "adultfinder.com":
			adultLegit = ds.Share(prefilter.ClassLegit)
		}
	}
	if nxUnexpected < 0.05 || nxUnexpected > 0.30 {
		t.Errorf("NX unexpected share = %.3f, want ≈ 0.137", nxUnexpected)
	}
	// adultfinder is censored by several countries: legit share far
	// below the usual ~0.9.
	if adultLegit > 0.92 {
		t.Errorf("adultfinder legit share = %.3f — censorship invisible", adultLegit)
	}

	// Table 5 shape: Adult's unexpected responses dominated by
	// censorship; NX dominated by search/parking/error.
	adultCensor := res.Report.Table5.Share(domains.Adult, classify.LCensorship)
	if adultCensor.Avg < 0.4 {
		t.Errorf("Adult censorship avg = %.3f, want high (paper: 0.886)", adultCensor.Avg)
	}
	nxSearch := res.Report.Table5.Share(domains.NX, classify.LSearch)
	if nxSearch.Avg < 0.15 {
		t.Errorf("NX search avg = %.3f, want ≈ 0.357", nxSearch.Avg)
	}
	if res.Report.Clusters == 0 || res.Report.PairCount == 0 {
		t.Errorf("degenerate classification: %+v", res.Report)
	}
	if res.Report.FetchedShare < 0.6 {
		t.Errorf("fetched share = %.3f, want ≈ 0.889", res.Report.FetchedShare)
	}
}

func TestDomainStudyCensorshipGeography(t *testing.T) {
	s := newStudy(t, 18)
	res, err := s.RunDomainStudy(50, []domains.Category{domains.Alexa})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Fig4
	if fig.UnexpectedCount == 0 {
		t.Fatal("no unexpected resolvers for the censored trio")
	}
	// China must dominate the unexpected distribution (83.6% in the
	// paper), far above its share among all resolvers (≈13%).
	cnAll := fig.All["CN"]
	cnUnexpected := fig.Unexpected["CN"]
	if cnUnexpected < 0.5 {
		t.Errorf("CN unexpected share = %.3f, want ≈ 0.836", cnUnexpected)
	}
	if cnUnexpected < cnAll*3 {
		t.Errorf("CN not overrepresented: all=%.3f unexpected=%.3f", cnAll, cnUnexpected)
	}
	// Iran second (12.9% in the paper).
	top := classify.TopCountries(fig.Unexpected, 2)
	if len(top) < 2 || top[0].Country != "CN" {
		t.Errorf("top censoring country = %+v, want CN first", top)
	}

	// Per-country compliance: ≈99.7% of Chinese resolvers censor
	// facebook.com.
	cov := res.CensorCoverageFor(func(ri int) string {
		return s.World.Geo().LookupU32(res.Resolvers[ri]).Country
	}, "facebook.com")
	if cov["CN"] < 0.95 {
		t.Errorf("Chinese compliance = %.3f, want ≈ 0.997", cov["CN"])
	}
	if cov["US"] > 0.2 {
		t.Errorf("US compliance = %.3f, want ≈ 0", cov["US"])
	}
	// GFW double responses observed.
	if res.Report.Cases.DoubleResponseResolvers == 0 {
		t.Error("no double-response resolvers detected")
	}
}

func TestDomainStudyCaseStudies(t *testing.T) {
	s := newStudy(t, 17)
	res, err := s.RunDomainStudy(50, []domains.Category{
		domains.Ads, domains.Banking, domains.MX, domains.Misc,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Report.Cases
	if cs.ProxyPlainIPs == 0 {
		t.Error("no HTTP-only proxies detected")
	}
	if cs.ProxyPlainResolvers <= cs.ProxyTLSResolvers {
		t.Errorf("proxy resolver ordering wrong: plain=%d tls=%d (paper: 10,179 vs 99)",
			cs.ProxyPlainResolvers, cs.ProxyTLSResolvers)
	}
	if cs.PhishPayPalIPs == 0 || cs.PhishPayPalResolvers == 0 {
		t.Error("PayPal phishing not detected")
	}
	if cs.PhishBankIPs == 0 {
		t.Error("bank phishing hosts not detected")
	}
	if cs.MailListenerIPs == 0 || cs.MailRedirResolvers == 0 {
		t.Error("mail interception not detected")
	}
	if cs.MalwareIPs == 0 || cs.MalwareResolvers == 0 {
		t.Error("malware delivery not detected")
	}
	if cs.AdInjectIPs == 0 {
		t.Error("ad injection not detected")
	}
	if cs.SameSetResolvers == 0 {
		t.Error("no same-answer-set resolvers found (paper: 50.4% of suspicious)")
	}
}

func TestChaosAndDeviceSurveysEndToEnd(t *testing.T) {
	s := newStudy(t, 16)
	chaos, n, err := s.RunChaos(46)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || chaos.Responded == 0 {
		t.Fatalf("chaos survey empty: n=%d", n)
	}
	if v := chaos.VersionedShare(); math.Abs(v-0.339) > 0.08 {
		t.Errorf("versioned share = %.3f", v)
	}
	dev, err := s.RunDevices(46)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Responsive == 0 {
		t.Fatal("device survey empty")
	}
}

func TestStageTraceComplete(t *testing.T) {
	s := newStudy(t, 16)
	res, err := s.RunDomainStudy(50, []domains.Category{domains.Dating})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageTrace) != 7 {
		t.Fatalf("stage trace = %+v", res.StageTrace)
	}
	for _, st := range res.StageTrace {
		if st.Count < 0 {
			t.Errorf("stage %s count %d", st.Stage, st.Count)
		}
	}
}

func TestDNSSECRaceExperiment(t *testing.T) {
	s := newStudy(t, 18)
	// wikileaks.org is signed AND injected by the Chinese firewall:
	// the exact §5 scenario.
	res, err := s.RunDNSSECRace(50, "CN", "wikileaks.org")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Signed {
		t.Fatal("wikileaks.org not DNSSEC-signed in this world")
	}
	if res.Resolvers < 20 {
		t.Skipf("only %d Chinese resolvers at this order", res.Resolvers)
	}
	// First-response strategy: overwhelmingly poisoned (99.7% of CN
	// resolvers return the injected answer first).
	if res.FirstPoisoned <= res.FirstCorrect*10 {
		t.Errorf("first-response poisoning too low: %d poisoned vs %d correct",
			res.FirstPoisoned, res.FirstCorrect)
	}
	// Validate-and-wait: never accepts a poisoned answer; the correct
	// signed response only arrives from double-response resolvers, so
	// most lookups fail instead (§5: DNSSEC protects integrity but
	// cannot force availability against an injector).
	if res.ValidatedCorrect+res.ValidatedUnavail != res.Resolvers {
		t.Errorf("validated outcomes %d+%d != %d resolvers",
			res.ValidatedCorrect, res.ValidatedUnavail, res.Resolvers)
	}
	if res.ValidatedUnavail == 0 {
		t.Error("validation never failed — injector race not modeled")
	}
	// The GFWDouble minority delivers a late signed answer that the
	// validating client accepts.
	if res.ValidatedCorrect == 0 {
		t.Error("no validated lookup succeeded — double responses unsigned?")
	}
	if res.ValidatedUnavail < res.ValidatedCorrect {
		t.Error("validated success should be the exception, not the rule")
	}
	// An unsigned injected domain cannot be protected at all.
	un, err := s.RunDNSSECRace(50, "CN", "facebook.com")
	if err != nil {
		t.Fatal(err)
	}
	if un.Signed {
		t.Fatal("facebook.com unexpectedly signed")
	}
	if un.ValidatedFallback == 0 {
		t.Error("unsigned domain did not fall back")
	}
}

func TestDNSSECSignedAnswerValidatesEndToEnd(t *testing.T) {
	s := newStudy(t, 16)
	pub, ok := s.World.ZonePublicKey(domains.GroundTruth)
	if !ok {
		t.Fatal("GT zone unsigned")
	}
	msgs := s.Scanner.Probe(s.World.RoleAddr(wildnet.RoleTrustedDNS, 0),
		domains.GroundTruth, dnswire.TypeA, dnswire.ClassIN)
	if len(msgs) == 0 {
		t.Fatal("no trusted response")
	}
	if !dnssec.ValidateResponse(pub, msgs[0]) {
		t.Error("trusted signed answer failed validation")
	}
}

func TestFineGrainedModificationClustering(t *testing.T) {
	s := newStudy(t, 17)
	res, err := s.RunDomainStudy(50, []domains.Category{domains.Banking})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.ModClusters == 0 {
		t.Fatal("fine-grained stage produced no modification clusters")
	}
	// The phishing stations inject a single script or swap a form
	// action: small modifications must be present.
	if rep.SmallModifications == 0 {
		t.Error("no small modifications found (injected-tag phish pages expected)")
	}
	if len(rep.ModClusterSizes) != rep.ModClusters {
		t.Errorf("cluster size list inconsistent: %d vs %d", len(rep.ModClusterSizes), rep.ModClusters)
	}
	total := 0
	for i, n := range rep.ModClusterSizes {
		total += n
		if i > 0 && n > rep.ModClusterSizes[i-1] {
			t.Error("cluster sizes not sorted descending")
		}
	}
	if total == 0 {
		t.Error("empty modification clusters")
	}
}

func TestOpenResolverProjectCrossCheck(t *testing.T) {
	// §2.2: the weekly counts match the Open Resolver Project's
	// independent scans within a 2% error margin. Model: a second,
	// independently seeded scan of the same week must agree.
	s := newStudy(t, 17)
	ours, err := s.SweepAt(10)
	if err != nil {
		t.Fatal(err)
	}
	orp := scanner.New(s.Transport, scanner.Options{Workers: 4, SettleDelay: scanner.NoSettle})
	theirs, err := orp.Sweep(s.Cfg.Order, 0x0127734C7, s.World.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	a := float64(ours.ByRCode[dnswire.RCodeNoError])
	b := float64(theirs.ByRCode[dnswire.RCodeNoError])
	diff := math.Abs(a-b) / a
	if diff > 0.02 {
		t.Errorf("independent scans disagree by %.2f%% (paper: ≤2%%)", 100*diff)
	}
}

func TestVanishedNetworkForensicsEndToEnd(t *testing.T) {
	// §2.3: 28 networks with substantial resolver populations in the
	// first scan show none at the end; the verification vantage
	// separates scanner-blocking from real filtering/shutdown.
	s := newStudy(t, 20)
	first, err := s.SweepAt(0)
	if err != nil {
		t.Fatal(err)
	}
	last, err := s.SweepAt(55)
	if err != nil {
		t.Fatal(err)
	}
	secondary, err := s.SecondaryAliveSet(55)
	if err != nil {
		t.Fatal(err)
	}
	asOf := func(u uint32) (uint32, string) {
		as := s.World.Geo().LookupU32(u).AS
		return as.ASN, as.Name
	}
	vanished := churn.ClassifyVanished(first.Responders, last.Responders, secondary, asOf, 3, 6)
	if len(vanished) == 0 {
		t.Fatal("no vanished networks found")
	}
	// Every fated AS (ASN 9000–9027) that was populous enough must be
	// flagged, and the blocks-scanner reason must dominate (21 of 28).
	reasons := map[string]int{}
	fated := 0
	for _, v := range vanished {
		reasons[v.Reason]++
		if v.ASN >= 9000 && v.ASN < 9028 {
			fated++
		}
	}
	if fated < len(vanished)*2/3 {
		t.Errorf("only %d/%d vanished networks are planted fates", fated, len(vanished))
	}
	if reasons["blocks-scanner"] == 0 {
		t.Error("no scanner-blocking networks identified via the secondary vantage")
	}
	t.Logf("vanished: %d networks, reasons: %v", len(vanished), reasons)
}

// TestObserverIsSideChannelOnly pins the tentpole's determinism clause:
// attaching an observer changes what the study reports about itself
// (stage events appear) but never what it measures.
func TestObserverIsSideChannelOnly(t *testing.T) {
	plain := newStudy(t, 16)
	resA, err := plain.RunDomainStudy(50, []domains.Category{domains.Dating})
	if err != nil {
		t.Fatal(err)
	}

	observed := newStudy(t, 16)
	var events []pipeline.StageEvent
	observed.Observer = func(ev pipeline.StageEvent) { events = append(events, ev) }
	resB, err := observed.RunDomainStudy(50, []domains.Category{domains.Dating})
	if err != nil {
		t.Fatal(err)
	}

	if len(resA.StageTrace) != len(resB.StageTrace) {
		t.Fatalf("stage traces diverge: %d vs %d entries", len(resA.StageTrace), len(resB.StageTrace))
	}
	for i := range resA.StageTrace {
		if resA.StageTrace[i] != resB.StageTrace[i] {
			t.Errorf("stage %d: %+v vs %+v", i, resA.StageTrace[i], resB.StageTrace[i])
		}
	}
	if resA.Report.Clusters != resB.Report.Clusters || resA.Report.PairCount != resB.Report.PairCount {
		t.Errorf("observer perturbed the measurement: clusters %d/%d pairs %d/%d",
			resA.Report.Clusters, resB.Report.Clusters, resA.Report.PairCount, resB.Report.PairCount)
	}

	// The observer saw every stage start and finish, in order.
	stages := []string{"ipv4-scan", "domain-scan", "prefilter", "classify", "figure4"}
	if len(events) != 2*len(stages) {
		t.Fatalf("observer saw %d events, want %d", len(events), 2*len(stages))
	}
	for i, name := range stages {
		start, done := events[2*i], events[2*i+1]
		if start.Stage != name || start.Kind != pipeline.StageStart {
			t.Errorf("event %d = %s/%v, want %s start", 2*i, start.Stage, start.Kind, name)
		}
		if done.Stage != name || done.Kind != pipeline.StageDone {
			t.Errorf("event %d = %s/%v, want %s done", 2*i+1, done.Stage, done.Kind, name)
		}
	}
}
