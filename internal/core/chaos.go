package core

import (
	"context"
	"fmt"
	"strings"

	"goingwild/internal/domains"
	"goingwild/internal/metrics"
	"goingwild/internal/wildnet"
)

// ChaosSummary is the deterministic record of one end-to-end pipeline
// run under a chaos profile. Every field is a pure function of
// (order, seed, profile, week), so two summaries from identical inputs
// must render byte-identically — that equality is the chaos harness's
// core assertion.
type ChaosSummary struct {
	Profile string
	Week    int
	// SweepTotal is the measured census count; GroundTruth is the
	// planted population a lossless sweep would have seen (flap outages
	// excluded — see wildnet.CountRespondingAt).
	SweepTotal  int
	GroundTruth int
	// NoError is the NOERROR resolver population the domain chain ran on.
	NoError int
	// ChaosResponders counts resolvers answering the CHAOS version scan.
	ChaosResponders int
	// StageTrace is the Figure-3 box flow of the domain chain.
	StageTrace []StageCount
	// Degraded lists the best-effort stages whose failures were
	// absorbed during the run. Empty under the clean profile.
	Degraded []DegradedStage
}

// MissShare is the fraction of the planted population the sweep missed
// (0 when the ground truth is empty).
func (c *ChaosSummary) MissShare() float64 {
	if c.GroundTruth == 0 {
		return 0
	}
	return float64(c.GroundTruth-c.SweepTotal) / float64(c.GroundTruth)
}

// Render serializes the summary into a canonical text form for
// byte-for-byte determinism comparisons.
func (c *ChaosSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile=%s week=%d\n", c.Profile, c.Week)
	fmt.Fprintf(&b, "sweep=%d truth=%d noerror=%d chaos=%d\n",
		c.SweepTotal, c.GroundTruth, c.NoError, c.ChaosResponders)
	for _, st := range c.StageTrace {
		fmt.Fprintf(&b, "stage %s=%d\n", st.Stage, st.Count)
	}
	for _, d := range c.Degraded {
		fmt.Fprintf(&b, "degraded %s: %s\n", d.Stage, d.Err)
	}
	return b.String()
}

// RunChaosPipeline builds a fresh study under the named chaos profile
// and drives a compact end-to-end pipeline at the given week: the
// Internet-wide census (compared against the planted ground truth), the
// CHAOS fingerprinting scan, and the Figure-3 domain chain over one
// category. It is the harness behind `make chaos` and the chaos matrix
// test: the pipeline must complete without error under every profile,
// and the summary must be byte-identical across runs.
func RunChaosPipeline(ctx context.Context, order uint, profile string, week int) (*ChaosSummary, error) {
	return RunChaosPipelineMetrics(ctx, order, profile, week, nil)
}

// RunChaosPipelineMetrics is RunChaosPipeline with a metrics registry
// threaded through the whole stack (scanner, fault layer, pipeline
// engines), so the harness can assert per-profile fault counters — the
// hostile profile must garble, the flaky profile must flap — alongside
// the byte-identical summary. A nil registry is exactly
// RunChaosPipeline.
func RunChaosPipelineMetrics(ctx context.Context, order uint, profile string, week int, reg *metrics.Registry) (*ChaosSummary, error) {
	cfg, err := ChaosProfileConfig(order, profile)
	if err != nil {
		return nil, err
	}
	cfg.Metrics = reg
	s, err := NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	sum := &ChaosSummary{Profile: profile, Week: week}
	bl := s.World.ScanBlacklist()
	sum.GroundTruth = s.World.CountRespondingAt(wildnet.VantagePrimary, wildnet.At(week), bl.ContainsU32)

	sweep, err := s.SweepAtContext(ctx, week)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: sweep: %w", profile, err)
	}
	sum.SweepTotal = sweep.Total()

	survey, _, err := s.RunChaosContext(ctx, week)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: chaos scan: %w", profile, err)
	}
	sum.ChaosResponders = survey.Responded

	dom, err := s.RunDomainStudyContext(ctx, week, []domains.Category{domains.Alexa})
	if err != nil {
		return nil, fmt.Errorf("chaos %s: domain chain: %w", profile, err)
	}
	sum.NoError = len(dom.Resolvers)
	sum.StageTrace = dom.StageTrace
	sum.Degraded = s.Degraded
	return sum, nil
}
