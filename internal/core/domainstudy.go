package core

import (
	"context"

	"goingwild/internal/classify"
	"goingwild/internal/domains"
	"goingwild/internal/pipeline"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// DomainStudyResult is the outcome of the full Figure-3 chain over one or
// more domain categories.
type DomainStudyResult struct {
	// Resolvers is the NOERROR population the scan targeted.
	Resolvers []uint32
	Scan      *scanner.DomainScanResult
	Pre       *prefilter.Result
	Report    *classify.Report
	// Fig4 is the country-distribution figure for the censored trio.
	Fig4 *classify.Figure4
	// StageTrace records per-stage tuple counts (the Figure-3 box
	// flow). The counts are emitted by the pipeline stages themselves
	// and collected from the engine's trace — there is no separate
	// accounting to fall out of sync.
	StageTrace []StageCount
}

// StageCount is one pipeline-stage measurement.
type StageCount struct {
	Stage string
	Count int
}

// RunDomainStudy executes the Figure-3 chain; it is the ctx-less wrapper
// over RunDomainStudyContext.
func (s *Study) RunDomainStudy(week int, cats []domains.Category) (*DomainStudyResult, error) {
	return s.RunDomainStudyContext(bgCtx, week, cats)
}

// RunDomainStudyContext executes steps ❶–❻ at the given week for the
// given categories (nil means all 13) as a pipeline: census → domain
// scan → prefilter → classify → Figure 4. The ground-truth domain is
// always appended, as in §3.3.
func (s *Study) RunDomainStudyContext(ctx context.Context, week int, cats []domains.Category) (*DomainStudyResult, error) {
	s.SetWeek(week)

	// ❷'s name list is static configuration, not stage work.
	var names []string
	if cats == nil {
		names = domains.Names()
	} else {
		for _, cat := range cats {
			for _, d := range domains.ByCategory(cat) {
				names = append(names, d.Name)
			}
		}
	}
	names = append(names, domains.GroundTruth)

	res := &DomainStudyResult{}
	var pipe *classify.Pipeline
	eng := s.engine()

	// ❶ Full IPv4 scan.
	eng.MustAdd(s.sweepStage("ipv4-scan", week, &res.Resolvers, nil))

	// ❷ Domain scan for the selected categories plus the GT domain.
	eng.MustAdd(pipeline.Stage{
		Name:  "domain-scan",
		Needs: []string{"ipv4-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			var err error
			res.Scan, err = s.Scanner.ScanDomainsContext(ctx, res.Resolvers, names)
			if err != nil {
				return nil, err
			}
			return []pipeline.Count{{Name: "2-domain-scan probes", Value: len(res.Resolvers) * len(names)}}, nil
		},
	})

	// ❸ DNS-based prefiltering.
	eng.MustAdd(pipeline.Stage{
		Name:  "prefilter",
		Needs: []string{"domain-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			res.Pre = prefilter.Run(res.Scan, s.PrefilterEnv())
			return []pipeline.Count{
				{Name: "3-unexpected tuples", Value: len(res.Pre.Unexpected)},
				{Name: "3-unexpected resolvers", Value: len(res.Pre.UnexpectedResolvers())},
			}, nil
		},
	})

	// ❹–❻ Acquisition, clustering, labeling, case studies.
	eng.MustAdd(pipeline.Stage{
		Name:  "classify",
		Needs: []string{"prefilter"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			gt := classify.BuildGroundTruth(s.Client, s.TrustedResolve, names)
			pipe = &classify.Pipeline{
				Client: s.Client,
				ResolverCountry: func(ri int) string {
					return s.World.Geo().LookupU32(res.Resolvers[ri]).Country
				},
				ResolverAddr: func(ri int) uint32 { return res.Resolvers[ri] },
				NearResolver: func(ip uint32, ri int) bool {
					r := res.Resolvers[ri]
					return ip>>8 == r>>8 || s.World.ASNOf(ip) == s.World.ASNOf(r)
				},
				ProbeCountryInjection: s.ProbeCountryInjection,
			}
			res.Report = pipe.Run(res.Scan, res.Pre, gt)
			return []pipeline.Count{
				{Name: "4-fetched pairs", Value: res.Report.PairCount},
				{Name: "5-clusters", Value: res.Report.Clusters},
			}, nil
		},
	})

	// Figure 4 rides after classification (it reads scan + prefilter
	// only, but the figure belongs to the finished report). It reports
	// no Figure-3 counts, keeping the trace exactly the box flow. The
	// figure is presentation, not measurement, so a failure degrades to
	// an empty figure instead of discarding the whole chain.
	eng.MustAdd(pipeline.Stage{
		Name:   "figure4",
		Needs:  []string{"classify"},
		Policy: pipeline.BestEffort,
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			res.Fig4 = classify.BuildFigure4(res.Scan, res.Pre, pipe.ResolverCountry,
				[]string{"facebook.com", "twitter.com", "youtube.com"})
			return nil, nil
		},
	})

	trace, err := s.runEngine(ctx, eng)
	if err != nil {
		return nil, err
	}
	if res.Fig4 == nil {
		// Degraded: an empty figure keeps the renderers total-safe.
		res.Fig4 = &classify.Figure4{}
	}
	for _, c := range trace.Counts() {
		res.StageTrace = append(res.StageTrace, StageCount{Stage: c.Name, Count: c.Value})
	}
	return res, nil
}

// CensorCoverageFor exposes the per-country compliance ratio for one
// domain of a finished study.
func (r *DomainStudyResult) CensorCoverageFor(country func(ri int) string, name string) map[string]float64 {
	return classify.CensorCoverage(r.Scan, r.Pre, country, name)
}
