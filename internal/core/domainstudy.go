package core

import (
	"goingwild/internal/classify"
	"goingwild/internal/domains"
	"goingwild/internal/prefilter"
	"goingwild/internal/scanner"
)

// DomainStudyResult is the outcome of the full Figure-3 chain over one or
// more domain categories.
type DomainStudyResult struct {
	// Resolvers is the NOERROR population the scan targeted.
	Resolvers []uint32
	Scan      *scanner.DomainScanResult
	Pre       *prefilter.Result
	Report    *classify.Report
	// Fig4 is the country-distribution figure for the censored trio.
	Fig4 *classify.Figure4
	// StageTrace records per-stage tuple counts (the Figure-3 box
	// flow).
	StageTrace []StageCount
}

// StageCount is one pipeline-stage measurement.
type StageCount struct {
	Stage string
	Count int
}

// RunDomainStudy executes steps ❶–❻ at the given week for the given
// categories (nil means all 13). The ground-truth domain is always
// appended, as in §3.3.
func (s *Study) RunDomainStudy(week int, cats []domains.Category) (*DomainStudyResult, error) {
	s.SetWeek(week)

	// ❶ Full IPv4 scan.
	sweep, err := s.SweepAt(week)
	if err != nil {
		return nil, err
	}
	resolvers := sweep.NOERROR()

	// ❷ Domain scan for the selected categories plus the GT domain.
	var names []string
	if cats == nil {
		names = domains.Names()
	} else {
		for _, cat := range cats {
			for _, d := range domains.ByCategory(cat) {
				names = append(names, d.Name)
			}
		}
	}
	names = append(names, domains.GroundTruth)
	scan, err := s.Scanner.ScanDomains(resolvers, names)
	if err != nil {
		return nil, err
	}

	// ❸ DNS-based prefiltering.
	pre := prefilter.Run(scan, s.PrefilterEnv())

	// ❹–❻ Acquisition, clustering, labeling, case studies.
	gt := classify.BuildGroundTruth(s.Client, s.TrustedResolve, names)
	pipe := &classify.Pipeline{
		Client: s.Client,
		ResolverCountry: func(ri int) string {
			return s.World.Geo().LookupU32(resolvers[ri]).Country
		},
		ResolverAddr: func(ri int) uint32 { return resolvers[ri] },
		NearResolver: func(ip uint32, ri int) bool {
			r := resolvers[ri]
			return ip>>8 == r>>8 || s.World.ASNOf(ip) == s.World.ASNOf(r)
		},
		ProbeCountryInjection: s.ProbeCountryInjection,
	}
	report := pipe.Run(scan, pre, gt)

	res := &DomainStudyResult{
		Resolvers: resolvers,
		Scan:      scan,
		Pre:       pre,
		Report:    report,
	}
	res.Fig4 = classify.BuildFigure4(scan, pre, pipe.ResolverCountry,
		[]string{"facebook.com", "twitter.com", "youtube.com"})

	probes := len(resolvers) * len(names)
	res.StageTrace = []StageCount{
		{"1-ipv4-scan responders", sweep.Total()},
		{"1-noerror resolvers", len(resolvers)},
		{"2-domain-scan probes", probes},
		{"3-unexpected tuples", len(pre.Unexpected)},
		{"3-unexpected resolvers", len(pre.UnexpectedResolvers())},
		{"4-fetched pairs", report.PairCount},
		{"5-clusters", report.Clusters},
	}
	return res, nil
}

// CensorCoverageFor exposes the per-country compliance ratio for one
// domain of a finished study.
func (r *DomainStudyResult) CensorCoverageFor(country func(ri int) string, name string) map[string]float64 {
	return classify.CensorCoverage(r.Scan, r.Pre, country, name)
}
