package core

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"goingwild/internal/churn"
	"goingwild/internal/metrics"
	"goingwild/internal/scanner"
)

// streamCfg is the shared shape of the streaming-determinism tests: a
// small world, enough weeks to exercise add/update/remove deltas.
func streamCfg(order uint) Config {
	cfg := DefaultConfig(order)
	cfg.Weeks = 6
	return cfg
}

// seriesBatch runs the batch weekly series on a fresh study.
func seriesBatch(t *testing.T, cfg Config) *churn.Series {
	t.Helper()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	series, err := s.RunWeeklySeriesContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return series
}

// seriesStream runs the streaming weekly series on a fresh study.
func seriesStream(t *testing.T, cfg Config, live func(EpochView)) *churn.Series {
	t.Helper()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	series, err := s.RunWeeklySeriesStreamContext(context.Background(), live)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

// TestStreamingSeriesMatchesBatch is the tentpole contract: the epoch
// stream must reproduce the batch series exactly — deeply equal
// structures, so every rendering derived from them (Figure 1, Tables
// 1–2; pure functions of the series) is byte-identical — including
// across a GOMAXPROCS flip, since the bounded queue hands the consumer
// exactly the producer's epoch order no matter the schedule. The CI
// stream-determinism job diffs the binaries' full stdout on top.
func TestStreamingSeriesMatchesBatch(t *testing.T) {
	const order = 16
	cfg := streamCfg(order)
	batch := seriesBatch(t, cfg)

	var views []EpochView
	stream := seriesStream(t, cfg, func(v EpochView) { views = append(views, v) })
	if !reflect.DeepEqual(stream, batch) {
		t.Fatal("streamed series != batch series")
	}

	// The live views arrive once per week, in order, already aggregated.
	if len(views) != cfg.Weeks {
		t.Fatalf("live callback fired %d times, want %d", len(views), cfg.Weeks)
	}
	for i, v := range views {
		if v.Obs.Week != i || v.Delta.Week != i {
			t.Errorf("view %d carries week %d / delta week %d", i, v.Obs.Week, v.Delta.Week)
		}
		if v.Obs.Total == 0 {
			t.Errorf("week %d live observation is empty", i)
		}
	}
	// After week 0's full-census delta, later weeks are genuinely
	// incremental: updates and removes appear, not just adds.
	if len(views[0].Delta.Deltas) != views[0].Obs.Total {
		t.Errorf("week-0 delta has %d records for %d responders; first epoch must be all adds",
			len(views[0].Delta.Deltas), views[0].Obs.Total)
	}

	old := runtime.GOMAXPROCS(0)
	flipped := 1
	if old == 1 {
		flipped = 4
	}
	runtime.GOMAXPROCS(flipped)
	again := seriesStream(t, cfg, nil)
	runtime.GOMAXPROCS(old)
	if !reflect.DeepEqual(again, batch) {
		t.Fatalf("streamed series diverges from batch at GOMAXPROCS=%d", flipped)
	}
}

// TestStreamingReplayReproducesBatchSnapshot is the delta-replay
// property at the core layer: folding every epoch's delta batch over
// the empty snapshot — which is exactly what the tracker does — must
// land on the batch run's final retained responder set, byte for byte.
func TestStreamingReplayReproducesBatchSnapshot(t *testing.T) {
	const order = 16
	cfg := streamCfg(order)
	batch := seriesBatch(t, cfg)

	var deltas []churn.EpochDelta
	stream := seriesStream(t, cfg, func(v EpochView) { deltas = append(deltas, v.Delta) })
	if len(stream.Last().Responders) == 0 {
		t.Fatal("no final responders to compare")
	}

	// Replay through the scanner delta layer alone, with no tracker in
	// the loop, as the CI determinism job does.
	var state []scanner.Responder
	for _, d := range deltas {
		var err error
		state, err = scanner.ApplyResponderDeltas(state, d.Deltas)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(state, batch.Last().Responders) {
		t.Fatal("replayed final snapshot != batch final responder set")
	}
}

// TestStreamingEpochMetricsDeterministic extends the metrics contract
// to the epoch instruments: pipeline.delta.size and pipeline.epoch.done
// are deterministic (identical stripped snapshots across runs and a
// GOMAXPROCS flip), while pipeline.epoch.lag carries the Timing class
// and is stripped.
func TestStreamingEpochMetricsDeterministic(t *testing.T) {
	cfg := streamCfg(14)
	run := func() *metrics.Registry {
		reg := metrics.New()
		c := cfg
		c.Metrics = reg
		s, err := NewStudy(c)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.RunWeeklySeriesStreamContext(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	regA := run()
	regB := run()
	jsonA, jsonB := stripJSON(t, regA), stripJSON(t, regB)
	if !bytes.Equal(jsonA, jsonB) {
		t.Errorf("epoch metrics differ between runs:\n--- run 1\n%s--- run 2\n%s", jsonA, jsonB)
	}
	old := runtime.GOMAXPROCS(0)
	flipped := 1
	if old == 1 {
		flipped = 4
	}
	runtime.GOMAXPROCS(flipped)
	regC := run()
	runtime.GOMAXPROCS(old)
	if jsonC := stripJSON(t, regC); !bytes.Equal(jsonA, jsonC) {
		t.Errorf("epoch metrics diverge at GOMAXPROCS=%d:\n--- base\n%s--- flipped\n%s", flipped, jsonA, jsonC)
	}

	snap := regA.Snapshot()
	if got := snap.Counter("pipeline.epoch.done"); got != uint64(cfg.Weeks) {
		t.Errorf("pipeline.epoch.done = %d, want %d", got, cfg.Weeks)
	}
	if !bytes.Contains(jsonA, []byte("pipeline.delta.size")) {
		t.Error("stripped snapshot is missing pipeline.delta.size")
	}
	if bytes.Contains(jsonA, []byte("pipeline.epoch.lag")) {
		t.Error("pipeline.epoch.lag survived StripTiming; it must carry the Timing class")
	}
}

// TestStreamingProducerFailurePropagates aborts the stream mid-flight
// and checks the producer error surfaces instead of a hang or a
// truncated success.
func TestStreamingProducerFailurePropagates(t *testing.T) {
	cfg := streamCfg(14)
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err = s.RunWeeklySeriesStreamContext(ctx, func(EpochView) {
		calls++
		if calls == 2 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled stream reported success")
	}
	if calls >= cfg.Weeks {
		t.Errorf("stream ran all %d weeks despite cancellation", calls)
	}
}
