package core

import (
	"context"
	"crypto/ed25519"
	"fmt"

	"goingwild/internal/dnssec"
	"goingwild/internal/dnswire"
	"goingwild/internal/pipeline"
)

// DNSSECRaceResult quantifies §5's discussion: what a client relying on
// Chinese resolvers experiences for an injected domain, under the
// first-response strategy versus the validate-and-wait strategy.
type DNSSECRaceResult struct {
	Domain    string
	Signed    bool
	Resolvers int
	// First-response strategy.
	FirstPoisoned int
	FirstCorrect  int
	// Validate-and-wait strategy: accept only correctly signed
	// responses; a signed domain with no valid response is a failure
	// ("unavailable"), which §5 predicts for injectors that outrace
	// the legitimate answer.
	ValidatedCorrect  int
	ValidatedUnavail  int
	ValidatedFallback int // unsigned domain: validation cannot help
}

// RunDNSSECRace probes every resolver of a country for one domain; it
// is the ctx-less wrapper over RunDNSSECRaceContext.
func (s *Study) RunDNSSECRace(week int, country, name string) (*DNSSECRaceResult, error) {
	return s.RunDNSSECRaceContext(bgCtx, week, country, name)
}

// RunDNSSECRaceContext probes every resolver of a country for one domain
// and evaluates both client strategies: census stage, trusted key-fetch
// stage, then the per-resolver race probes. The zone key is fetched
// through the trusted path (the "previous knowledge that the domain
// supports DNSSEC" precondition the paper spells out).
func (s *Study) RunDNSSECRaceContext(ctx context.Context, week int, country, name string) (*DNSSECRaceResult, error) {
	s.SetWeek(week)
	var (
		resolvers []uint32
		pub       ed25519.PublicKey
		signed    bool
		res       *DNSSECRaceResult
	)
	eng := s.engine()
	eng.MustAdd(pipeline.Stage{
		Name: "ipv4-scan",
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			sweep, err := s.SweepAtContext(ctx, week)
			if err != nil {
				return nil, err
			}
			for _, addr := range sweep.NOERROR() {
				if s.World.Geo().LookupU32(addr).Country == country {
					resolvers = append(resolvers, addr)
				}
			}
			if len(resolvers) == 0 {
				return nil, fmt.Errorf("core: no NOERROR resolvers in %s", country)
			}
			return []pipeline.Count{{Name: "country resolvers", Value: len(resolvers)}}, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "key-fetch",
		Needs: []string{"ipv4-scan"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			// Client-side key knowledge via a trusted DNSKEY lookup.
			msgs, err := s.Scanner.ProbeContext(ctx, s.trustedDNS, name, dnswire.TypeDNSKEY, dnswire.ClassIN)
			if err != nil {
				return nil, err
			}
			for _, m := range msgs {
				for _, rr := range m.Answers {
					if k, ok := rr.Data.(dnswire.DNSKEY); ok {
						pub = ed25519.PublicKey(k.PublicKey)
						signed = true
					}
				}
			}
			return nil, nil
		},
	})
	eng.MustAdd(pipeline.Stage{
		Name:  "race-probes",
		Needs: []string{"key-fetch"},
		Run: func(ctx context.Context) ([]pipeline.Count, error) {
			legit, _ := s.TrustedResolve(name)
			legitSet := map[uint32]bool{}
			for _, a := range legit {
				legitSet[a] = true
			}
			correct := func(m *dnswire.Message) bool {
				for _, a := range m.AnswerAddrs() {
					if legitSet[s.World.Mask(u32Of(a))] {
						return true
					}
				}
				return false
			}

			res = &DNSSECRaceResult{Domain: name, Signed: signed, Resolvers: len(resolvers)}
			for _, r := range resolvers {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				msgs, err := s.Scanner.ProbeContext(ctx, r, name, dnswire.TypeA, dnswire.ClassIN)
				if err != nil {
					return nil, err
				}
				if len(msgs) == 0 {
					res.Resolvers--
					continue
				}
				// Strategy 1: first response wins.
				if correct(msgs[0]) {
					res.FirstCorrect++
				} else {
					res.FirstPoisoned++
				}
				// Strategy 2: wait for a correctly signed response.
				if !signed {
					res.ValidatedFallback++
					continue
				}
				// A cryptographically valid signature IS the correctness
				// criterion here — CDN answers legitimately differ from
				// the trusted vantage's, but only the zone owner can
				// sign them.
				validated := false
				for _, m := range msgs {
					if dnssec.ValidateResponse(pub, m) {
						validated = true
						res.ValidatedCorrect++
						break
					}
				}
				if !validated {
					res.ValidatedUnavail++
				}
			}
			return []pipeline.Count{
				{Name: "first-response poisoned", Value: res.FirstPoisoned},
				{Name: "validated correct", Value: res.ValidatedCorrect},
			}, nil
		},
	})
	if _, err := s.runEngine(ctx, eng); err != nil {
		return nil, err
	}
	return res, nil
}

func u32Of(a interface{ As4() [4]byte }) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
