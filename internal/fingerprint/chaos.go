// Package fingerprint classifies resolvers by DNS server software and by
// the hardware device behind them (§2.4): CHAOS version.bind /
// version.server responses are parsed against known software version
// strings, and FTP/HTTP/HTTPS/SSH/Telnet banners are matched against a
// hand-compiled regular-expression database, mirroring the paper's 2,245
// manually curated expressions.
package fingerprint

import (
	"regexp"
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
	"goingwild/internal/software"
)

// ChaosOutcome buckets a resolver's CHAOS behavior.
type ChaosOutcome uint8

// CHAOS outcomes (§2.4's four observed classes plus silence).
const (
	ChaosSilent    ChaosOutcome = iota
	ChaosErrors                 // REFUSED/SERVFAIL on both queries
	ChaosNoVersion              // NOERROR but no version text
	ChaosHiddenStr              // administrator-configured junk string
	ChaosVersion                // a parseable software version
)

// SoftwareID identifies parsed software.
type SoftwareID struct {
	Vendor  string
	Version string
	// CatalogIdx indexes software.Catalog, or -1 for versions parsed
	// generically (not in the curated table).
	CatalogIdx int
}

// versionPatterns parse raw version strings into (vendor, version).
var versionPatterns = []struct {
	re     *regexp.Regexp
	vendor string
}{
	{regexp.MustCompile(`^(9\.[0-9]+\.[0-9]+)`), "BIND"},
	{regexp.MustCompile(`^bind[ -]?(9\.[0-9.]+)`), "BIND"},
	{regexp.MustCompile(`^dnsmasq-([0-9.]+)`), "Dnsmasq"},
	{regexp.MustCompile(`^unbound ([0-9.]+)`), "Unbound"},
	{regexp.MustCompile(`^powerdns recursor ([0-9.]+)`), "PowerDNS"},
	{regexp.MustCompile(`^microsoft dns ([0-9.]+)`), "Microsoft DNS"},
	{regexp.MustCompile(`^nominum vantio ([0-9.]+)`), "Nominum Vantio"},
	{regexp.MustCompile(`^dnscache ([0-9.]+)`), "djbdns"},
}

// ParseChaos classifies one resolver's pair of CHAOS answers.
func ParseChaos(a *scanner.ChaosAnswer) (ChaosOutcome, SoftwareID) {
	if !a.BindAnswered && !a.ServerAnswered {
		return ChaosSilent, SoftwareID{CatalogIdx: -1}
	}
	bindErr := !a.BindAnswered || a.BindRCode != dnswire.RCodeNoError
	serverErr := !a.ServerAnswered || a.ServerRCode != dnswire.RCodeNoError
	if bindErr && serverErr {
		return ChaosErrors, SoftwareID{CatalogIdx: -1}
	}
	text := a.BindText
	if text == "" {
		text = a.ServerText
	}
	if strings.TrimSpace(text) == "" {
		return ChaosNoVersion, SoftwareID{CatalogIdx: -1}
	}
	if id, ok := parseVersionString(text); ok {
		return ChaosVersion, id
	}
	return ChaosHiddenStr, SoftwareID{CatalogIdx: -1}
}

// parseVersionString recognizes real software versions; everything else
// counts as an operator-configured hidden string.
func parseVersionString(text string) (SoftwareID, bool) {
	norm := strings.ToLower(strings.TrimSpace(text))
	// Exact catalog match first (fast path and authoritative index).
	for i := range software.Catalog {
		e := &software.Catalog[i]
		if strings.EqualFold(text, e.Bind) || strings.EqualFold(text, e.Server) {
			return SoftwareID{Vendor: e.Vendor, Version: e.Version, CatalogIdx: i}, true
		}
	}
	for _, p := range versionPatterns {
		if m := p.re.FindStringSubmatch(norm); m != nil {
			version := m[1]
			// Normalize BIND suffixes like "9.8.2-P1" to x.y.z.
			if p.vendor == "BIND" {
				if i := strings.IndexAny(version, "-+"); i > 0 {
					version = version[:i]
				}
			}
			idx := -1
			for ci := range software.Catalog {
				e := &software.Catalog[ci]
				if e.Vendor == p.vendor && strings.HasPrefix(version, e.Version) {
					idx = ci
					break
				}
			}
			return SoftwareID{Vendor: p.vendor, Version: version, CatalogIdx: idx}, true
		}
	}
	return SoftwareID{CatalogIdx: -1}, false
}

// ChaosSurvey aggregates a full CHAOS scan into the Table-3 shape.
type ChaosSurvey struct {
	Responded int
	Outcomes  map[ChaosOutcome]int
	// Versions counts resolvers per (vendor, version) string.
	Versions map[string]int
	// VendorTotals counts resolvers per vendor among the versioned.
	VendorTotals map[string]int
	// CatalogCounts counts resolvers per curated catalog entry.
	CatalogCounts map[int]int
}

// SurveyChaos parses every answer of a CHAOS scan.
func SurveyChaos(res *scanner.ChaosResult) *ChaosSurvey {
	s := &ChaosSurvey{
		Outcomes:      map[ChaosOutcome]int{},
		Versions:      map[string]int{},
		VendorTotals:  map[string]int{},
		CatalogCounts: map[int]int{},
	}
	for i := range res.Answers {
		outcome, id := ParseChaos(&res.Answers[i])
		if outcome == ChaosSilent {
			continue
		}
		s.Responded++
		s.Outcomes[outcome]++
		if outcome == ChaosVersion {
			s.Versions[id.Vendor+" "+id.Version]++
			s.VendorTotals[id.Vendor]++
			if id.CatalogIdx >= 0 {
				s.CatalogCounts[id.CatalogIdx]++
			}
		}
	}
	return s
}

// VersionedShare returns the fraction of responders leaking a version
// (the paper's 33.9%).
func (s *ChaosSurvey) VersionedShare() float64 {
	if s.Responded == 0 {
		return 0
	}
	return float64(s.Outcomes[ChaosVersion]) / float64(s.Responded)
}
