package fingerprint

import (
	"math"
	"testing"
	"time"

	"goingwild/internal/devices"
	"goingwild/internal/dnswire"
	"goingwild/internal/scanner"
	"goingwild/internal/software"
	"goingwild/internal/wildnet"
)

func TestParseChaosClasses(t *testing.T) {
	cases := []struct {
		name string
		a    scanner.ChaosAnswer
		want ChaosOutcome
	}{
		{"silent", scanner.ChaosAnswer{}, ChaosSilent},
		{"errors", scanner.ChaosAnswer{
			BindAnswered: true, BindRCode: dnswire.RCodeRefused,
			ServerAnswered: true, ServerRCode: dnswire.RCodeServFail,
		}, ChaosErrors},
		{"no version", scanner.ChaosAnswer{
			BindAnswered: true, BindRCode: dnswire.RCodeNoError,
			ServerAnswered: true, ServerRCode: dnswire.RCodeNoError,
		}, ChaosNoVersion},
		{"hidden", scanner.ChaosAnswer{
			BindAnswered: true, BindRCode: dnswire.RCodeNoError, BindText: "go away",
		}, ChaosHiddenStr},
		{"bind version", scanner.ChaosAnswer{
			BindAnswered: true, BindRCode: dnswire.RCodeNoError, BindText: "9.8.2",
		}, ChaosVersion},
		{"dnsmasq", scanner.ChaosAnswer{
			BindAnswered: true, BindRCode: dnswire.RCodeNoError, BindText: "dnsmasq-2.40",
		}, ChaosVersion},
	}
	for _, c := range cases {
		got, _ := ParseChaos(&c.a)
		if got != c.want {
			t.Errorf("%s: outcome = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestParseVersionStringIdentifiesCatalog(t *testing.T) {
	for i, e := range software.Catalog {
		id, ok := parseVersionString(e.Bind)
		if !ok {
			t.Errorf("catalog entry %q not parsed", e.Bind)
			continue
		}
		if id.CatalogIdx != i {
			t.Errorf("%q resolved to catalog %d, want %d", e.Bind, id.CatalogIdx, i)
		}
		if id.Vendor != e.Vendor {
			t.Errorf("%q vendor = %q, want %q", e.Bind, id.Vendor, e.Vendor)
		}
	}
}

func TestParseVersionSuffixNormalization(t *testing.T) {
	id, ok := parseVersionString("9.8.2rc1-RedHat-9.8.2-0.10.rc1.el6")
	if !ok || id.Vendor != "BIND" {
		t.Fatalf("suffixed BIND not parsed: %+v %v", id, ok)
	}
	if !ok || id.Version[:5] != "9.8.2" {
		t.Errorf("version = %q", id.Version)
	}
}

func TestHiddenStringsNotParsed(t *testing.T) {
	for _, s := range software.HiddenStrings {
		if s == "9.9.9" {
			continue // deliberately ambiguous decoy: parses as a BIND version
		}
		if id, ok := parseVersionString(s); ok {
			t.Errorf("hidden string %q parsed as %+v", s, id)
		}
	}
}

func TestClassifyBannersCatalogRecovery(t *testing.T) {
	// Every catalog model with a token must be classified into its own
	// hardware and OS category by the regex DB.
	misses := 0
	for _, m := range devices.Catalog {
		id := ClassifyBanners(m.Banners)
		if !id.Responsive {
			t.Errorf("%s: no banners grabbed", m.Name)
			continue
		}
		if m.Name == "unknown-blob" || m.Name == "unknown-telnet" {
			if id.Hardware != devices.HWUnknown || id.OS != devices.OSUnknown {
				t.Errorf("%s misclassified as %s/%s", m.Name, id.Hardware, id.OS)
			}
			continue
		}
		if id.Hardware != m.Hardware || id.OS != m.OS {
			t.Errorf("%s classified as %s/%s, want %s/%s", m.Name, id.Hardware, id.OS, m.Hardware, m.OS)
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d models misclassified", misses)
	}
}

func TestDreamboxWorkedExample(t *testing.T) {
	id := ClassifyBanners(map[devices.Proto]string{devices.ProtoTelnet: "dm500plus login:"})
	if id.Hardware != devices.HWDVR || id.OS != devices.OSLinux {
		t.Errorf("dm500plus token gave %s/%s, want DVR/Linux (§2.4)", id.Hardware, id.OS)
	}
}

type worldBanners struct {
	w *wildnet.World
	t wildnet.Time
}

func (s worldBanners) Banner(addr uint32, proto devices.Proto) (string, bool) {
	return s.w.ServiceBanner(addr, proto, s.t)
}

func TestSurveyMatchesTable4Shape(t *testing.T) {
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	var resolvers []uint32
	for u := uint32(0); u < 1<<19; u++ {
		if w.ResolverAt(u, wildnet.At(46)) {
			resolvers = append(resolvers, u)
		}
	}
	s := SurveyDevices(worldBanners{w, wildnet.At(46)}, resolvers)
	respShare := float64(s.Responsive) / float64(s.Scanned)
	if math.Abs(respShare-0.263) > 0.04 {
		t.Errorf("TCP-responsive share = %.3f, want ≈ 0.263", respShare)
	}
	router := float64(s.Hardware[devices.HWRouter]) / float64(s.Responsive)
	if math.Abs(router-0.341) > 0.05 {
		t.Errorf("router share = %.3f, want ≈ 0.341", router)
	}
	zynos := float64(s.OS[devices.OSZyNOS]) / float64(s.Responsive)
	if math.Abs(zynos-0.166) > 0.04 {
		t.Errorf("ZyNOS share = %.3f, want ≈ 0.166", zynos)
	}
	unknown := float64(s.Hardware[devices.HWUnknown]) / float64(s.Responsive)
	if math.Abs(unknown-0.293) > 0.06 {
		t.Errorf("unknown-hardware share = %.3f, want ≈ 0.293", unknown)
	}
}

func TestChaosSurveyMatchesTable3Shape(t *testing.T) {
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr.Close()
	sc := scanner.New(tr, scanner.Options{Workers: 4, SettleDelay: time.Millisecond})
	sweep, err := sc.Sweep(18, 17, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := sc.ScanChaos(sweep.NOERROR())
	if err != nil {
		t.Fatal(err)
	}
	s := SurveyChaos(chaos)
	if s.Responded == 0 {
		t.Fatal("no CHAOS responders")
	}
	if v := s.VersionedShare(); math.Abs(v-0.339) > 0.05 {
		t.Errorf("versioned share = %.3f, want ≈ 0.339", v)
	}
	errShare := float64(s.Outcomes[ChaosErrors]) / float64(s.Responded)
	if math.Abs(errShare-0.427) > 0.05 {
		t.Errorf("error share = %.3f, want ≈ 0.427", errShare)
	}
	// BIND must dominate the versioned population (60.2%).
	versioned := s.Outcomes[ChaosVersion]
	bind := s.VendorTotals["BIND"]
	if frac := float64(bind) / float64(versioned); math.Abs(frac-0.602) > 0.08 {
		t.Errorf("BIND share = %.3f, want ≈ 0.602", frac)
	}
	// The single most common version must be BIND 9.8.2 (Table 3).
	bestName, bestCount := "", 0
	for name, n := range s.Versions {
		if n > bestCount {
			bestName, bestCount = name, n
		}
	}
	if bestName != "BIND 9.8.2" {
		t.Errorf("top version = %s (%d), want BIND 9.8.2", bestName, bestCount)
	}
}

func TestRuleCountNontrivial(t *testing.T) {
	if RuleCount() < 25 {
		t.Errorf("device DB has only %d rules", RuleCount())
	}
}

// TestSurveySeedRobustness guards against seed-overfitting: the Table-3
// shape must hold for worlds the tuning never saw.
func TestSurveySeedRobustness(t *testing.T) {
	for _, seed := range []uint64{0xA11CE, 0xB0B, 0xFEED5EED} {
		cfg := wildnet.DefaultConfig(17)
		cfg.Seed = seed
		w, err := wildnet.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
		sc := scanner.New(tr, scanner.Options{Workers: 4, SettleDelay: scanner.NoSettle})
		sweep, err := sc.Sweep(17, uint32(seed), w.ScanBlacklist())
		if err != nil {
			t.Fatal(err)
		}
		chaos, err := sc.ScanChaos(sweep.NOERROR())
		if err != nil {
			t.Fatal(err)
		}
		s := SurveyChaos(chaos)
		if v := s.VersionedShare(); math.Abs(v-0.339) > 0.06 {
			t.Errorf("seed %#x: versioned share = %.3f", seed, v)
		}
		versioned := s.Outcomes[ChaosVersion]
		if versioned > 0 {
			bind := float64(s.VendorTotals["BIND"]) / float64(versioned)
			if math.Abs(bind-0.602) > 0.10 {
				t.Errorf("seed %#x: BIND share = %.3f", seed, bind)
			}
		}
		tr.Close()
	}
}
