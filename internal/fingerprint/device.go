package fingerprint

import (
	"regexp"

	"goingwild/internal/devices"
)

// BannerSource abstracts the TCP banner grabbing of §2.4: connect to a
// host on one of the five protocols and read whatever it prints. The
// virtual Internet satisfies this; a real deployment would dial sockets.
type BannerSource interface {
	Banner(addr uint32, proto devices.Proto) (string, bool)
}

// rule is one expression of the fingerprint database, compiled — like the
// paper's 2,245 expressions — from tokens observed in aggregated banner
// payloads plus vendor manuals (e.g. "dm500plus login" ⇒ a Linux/PowerPC
// DVR).
type rule struct {
	re       *regexp.Regexp
	hardware devices.Hardware
	os       devices.OS
	label    string
}

func r(pattern string, hw devices.Hardware, os devices.OS, label string) rule {
	return rule{re: regexp.MustCompile(pattern), hardware: hw, os: os, label: label}
}

// deviceDB is ordered: earlier (more specific) rules win.
var deviceDB = []rule{
	// ZyXEL routers run ZyNOS; both the model banner and the OS token
	// appear in telnet/HTTP payloads.
	r(`P-660[A-Z0-9-]*`, devices.HWRouter, devices.OSZyNOS, "zyxel-p660"),
	r(`AMG1302`, devices.HWRouter, devices.OSZyNOS, "zyxel-amg1302"),
	r(`ZyXEL|ZyNOS`, devices.HWRouter, devices.OSZyNOS, "zyxel-generic"),
	r(`TP-LINK|TL-WR[0-9]+`, devices.HWRouter, devices.OSLinux, "tplink"),
	r(`DSL-26[0-9][0-9]B`, devices.HWRouter, devices.OSLinux, "dlink-dsl"),
	r(`MikroTik|RouterOS|ROSSSH`, devices.HWRouter, devices.OSRouterOS, "mikrotik"),
	r(`DrayTek|Vigor`, devices.HWRouter, devices.OSEmbedded, "draytek"),
	r(`HG5[0-9][0-9]e? Home Gateway|HG532`, devices.HWRouter, devices.OSEmbedded, "huawei-hg"),
	r(`SmartAX|SmartWare`, devices.HWRouter, devices.OSSmartWare, "smartax"),
	// Embedded devices: web-server tokens without further hardware
	// hints (the paper's Embedded category).
	r(`GoAhead-Webs`, devices.HWEmbedded, devices.OSUnknown, "goahead"),
	r(`RomPager/4\.5`, devices.HWEmbedded, devices.OSUnknown, "rompager-cpe"),
	r(`Serial to LAN converter`, devices.HWEmbedded, devices.OSEmbedded, "serial2lan"),
	r(`Raspbian`, devices.HWEmbedded, devices.OSLinux, "raspberrypi"),
	r(`Arduino`, devices.HWEmbedded, devices.OSEmbedded, "arduino"),
	r(`BusyBox v[0-9.]+`, devices.HWEmbedded, devices.OSLinux, "busybox"),
	// Firewalls.
	r(`FortiSSH|fortigate`, devices.HWFirewall, devices.OSUnix, "fortigate"),
	r(`SonicWALL`, devices.HWFirewall, devices.OSEmbedded, "sonicwall"),
	// Cameras.
	r(`IP CAMERA|DVRDVS-Webs`, devices.HWCamera, devices.OSLinux, "hikvision"),
	r(`Netwave IP Camera|Foscam`, devices.HWCamera, devices.OSEmbedded, "foscam"),
	// DVRs — including the paper's worked example.
	r(`dm500plus login`, devices.HWDVR, devices.OSLinux, "dreambox-dm500"),
	r(`DVR16 Remote Viewer|Enigma WebInterface`, devices.HWDVR, devices.OSLinux, "generic-dvr"),
	// NAS and DSLAM.
	r(`Synology|DiskStation`, devices.HWNAS, devices.OSLinux, "synology"),
	r(`DSLAM`, devices.HWDSLAM, devices.OSEmbedded, "dslam"),
	// Other devices.
	r(`JetDirect|HP-ChaiSOE`, devices.HWOther, devices.OSEmbedded, "printer"),
	r(`Grandstream`, devices.HWOther, devices.OSEmbedded, "voip"),
	// Servers: OS detectable, hardware not.
	r(`Raspbian|Ubuntu|Debian`, devices.HWUnknown, devices.OSLinux, "linux-server"),
	r(`CentOS`, devices.HWUnknown, devices.OSCentOS, "centos-server"),
	r(`FreeBSD`, devices.HWUnknown, devices.OSUnix, "freebsd-server"),
	r(`Microsoft-IIS|Microsoft FTP Service`, devices.HWUnknown, devices.OSWindows, "windows-server"),
	r(`eCos`, devices.HWUnknown, devices.OSEmbedded, "ecos"),
	r(`QNX`, devices.HWUnknown, devices.OSOther, "qnx"),
}

// RuleCount reports the size of the expression database.
func RuleCount() int { return len(deviceDB) }

// DeviceID is a fingerprinting verdict.
type DeviceID struct {
	Hardware devices.Hardware
	OS       devices.OS
	Label    string
	// Responsive reports whether any TCP service returned payload;
	// Unknown verdicts with Responsive=true are the paper's
	// "Unknown" table column, not silence.
	Responsive bool
}

// ClassifyBanners matches the collected banners of one host against the
// database. The first matching rule (most specific first) wins.
func ClassifyBanners(banners map[devices.Proto]string) DeviceID {
	if len(banners) == 0 {
		return DeviceID{}
	}
	for _, rule := range deviceDB {
		for _, b := range banners {
			if rule.re.MatchString(b) {
				return DeviceID{Hardware: rule.hardware, OS: rule.os, Label: rule.label, Responsive: true}
			}
		}
	}
	return DeviceID{Responsive: true}
}

// Grab collects the banners of one host over all five protocols.
func Grab(src BannerSource, addr uint32) map[devices.Proto]string {
	var out map[devices.Proto]string
	for p := devices.Proto(0); p < devices.NumProtos; p++ {
		if b, ok := src.Banner(addr, p); ok {
			if out == nil {
				out = make(map[devices.Proto]string, 2)
			}
			out[p] = b
		}
	}
	return out
}

// DeviceSurvey aggregates device fingerprinting over a population
// (Table 4).
type DeviceSurvey struct {
	Scanned    int
	Responsive int
	Hardware   map[devices.Hardware]int
	OS         map[devices.OS]int
	Labels     map[string]int
}

// SurveyDevices fingerprints every resolver in the list.
func SurveyDevices(src BannerSource, resolvers []uint32) *DeviceSurvey {
	s := &DeviceSurvey{
		Scanned:  len(resolvers),
		Hardware: map[devices.Hardware]int{},
		OS:       map[devices.OS]int{},
		Labels:   map[string]int{},
	}
	for _, addr := range resolvers {
		id := ClassifyBanners(Grab(src, addr))
		if !id.Responsive {
			continue
		}
		s.Responsive++
		s.Hardware[id.Hardware]++
		s.OS[id.OS]++
		if id.Label != "" {
			s.Labels[id.Label]++
		}
	}
	return s
}
