package fetch

import (
	"strings"
	"testing"

	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

func testClient(t *testing.T) (*wildnet.World, *Client) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	web := websim.New(w, wildnet.At(50))
	return w, NewClient(web, nil)
}

func TestFetchLegitContent(t *testing.T) {
	w, c := testClient(t)
	legit, _ := w.LegitAddrs("chase.com", "US")
	res := c.Fetch("chase.com", legit[0], 0)
	if !res.OK || res.Status != 200 {
		t.Fatalf("fetch failed: %+v", res)
	}
	if !strings.Contains(res.Body, "Chase") {
		t.Error("wrong content")
	}
}

func TestFetchLANUnreachable(t *testing.T) {
	_, c := testClient(t)
	lan := uint32(192)<<24 | uint32(168)<<16 | uint32(1)<<8 | 1
	res := c.Fetch("chase.com", lan, 0)
	if res.OK || res.NoPayload != "lan" {
		t.Errorf("LAN fetch = %+v", res)
	}
}

func TestFetchNoService(t *testing.T) {
	w, c := testClient(t)
	dead := w.RoleAddr(wildnet.RoleDeadCDN, 1)
	res := c.Fetch("facebook.com", dead, 0)
	if res.OK || res.NoPayload != "no-service" {
		t.Errorf("dead-CDN fetch = %+v", res)
	}
}

func TestMailAndDetonation(t *testing.T) {
	w, c := testClient(t)
	sniff := w.RoleAddr(wildnet.RoleMailSniff, 20)
	if _, ok := c.MailBanner(sniff, "smtp"); !ok {
		t.Error("mail sniff host silent")
	}
	mal := w.RoleAddr(wildnet.RoleMalware, 2)
	bad, ok := c.Detonate(mal, "/flash_update.exe")
	if !ok || !bad {
		t.Errorf("detonation = %v/%v", bad, ok)
	}
	legit, _ := w.LegitAddrs("update.adobe.example", "DE")
	good, ok := c.Detonate(legit[0], "/flash_update.exe")
	if ok && good {
		t.Error("clean installer flagged")
	}
}

func TestTLSValid(t *testing.T) {
	w, c := testClient(t)
	proxy := w.RoleAddr(wildnet.RoleProxyTLS, 0)
	valid, selfSigned, ok := c.TLSValid(proxy, "chase.com")
	if !ok || !valid || selfSigned {
		t.Errorf("TLS proxy probe = %v/%v/%v", valid, selfSigned, ok)
	}
	plain := w.RoleAddr(wildnet.RoleProxyPlain, 0)
	if _, _, ok := c.TLSValid(plain, "chase.com"); ok {
		t.Error("HTTP-only proxy spoke TLS")
	}
}

func TestRedirectParsing(t *testing.T) {
	resolved := map[string][]uint32{}
	_, c := testClient(t)
	c.ResolveAt = func(resolver uint32, name string) ([]uint32, bool) {
		resolved[name] = []uint32{42}
		return []uint32{42}, true
	}
	host, ip, ok := c.resolveRedirect("http://next.example/path?q=1", 7)
	if !ok || host != "next.example" || ip != 42 {
		t.Errorf("redirect = %q/%d/%v", host, ip, ok)
	}
	if _, _, ok := c.resolveRedirect("", 7); ok {
		t.Error("empty redirect accepted")
	}
	if _, _, ok := c.resolveRedirect("https:///nohost", 7); ok {
		t.Error("hostless redirect accepted")
	}
}
