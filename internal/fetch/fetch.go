// Package fetch is step ❹ of the processing chain (§3.5): it impersonates
// a client using the returned (possibly bogus) addresses — requesting
// HTTP(S) content with the original domain in the Host header, following
// up to two redirect/iframe hops (resolving new names at the resolver
// that produced the tuple), and collecting IMAP/POP3/SMTP banners for the
// MX domain set.
package fetch

import (
	"strings"

	"goingwild/internal/dnswire"
	"goingwild/internal/websim"
	"goingwild/internal/wildnet"
)

// Result is one acquisition outcome.
type Result struct {
	// OK reports that HTTP payload was obtained.
	OK     bool
	Status int
	Body   string
	// NoPayload explains a missing payload: "lan" for RFC1918
	// addresses, "no-service" for connection failures.
	NoPayload string
	// Hops counts followed redirects.
	Hops int
	// FinalIP is the address that served the final payload.
	FinalIP uint32
}

// Client acquires content through the simulated application layer.
type Client struct {
	// Web is the application layer.
	Web *websim.Server
	// ResolveAt resolves names at the resolver that produced the
	// original tuple, as the paper does for redirect targets.
	ResolveAt func(resolver uint32, name string) ([]uint32, bool)
	// MaxHops bounds redirect following (the paper follows 2).
	MaxHops int
}

// NewClient builds an acquisition client.
func NewClient(web *websim.Server, resolveAt func(resolver uint32, name string) ([]uint32, bool)) *Client {
	return &Client{Web: web, ResolveAt: resolveAt, MaxHops: 2}
}

// Fetch requests the content a client would see when the resolver claims
// domain name lives at ip.
func (c *Client) Fetch(name string, ip uint32, resolver uint32) Result {
	res := Result{FinalIP: ip}
	host := dnswire.CanonicalName(name)
	for hop := 0; ; hop++ {
		if wildnet.IsLANAddr(ip) {
			res.NoPayload = "lan"
			return res
		}
		resp, ok := c.Web.HTTP(ip, host, false)
		if !ok {
			res.NoPayload = "no-service"
			return res
		}
		if resp.Redirect != "" && hop < c.MaxHops {
			nextHost, nextIP, ok := c.resolveRedirect(resp.Redirect, resolver)
			if ok {
				host, ip = nextHost, nextIP
				res.Hops++
				res.FinalIP = ip
				continue
			}
		}
		res.OK = true
		res.Status = resp.Status
		res.Body = resp.Body
		res.FinalIP = ip
		return res
	}
}

// resolveRedirect parses a Location target and resolves its host at the
// original resolver.
func (c *Client) resolveRedirect(location string, resolver uint32) (string, uint32, bool) {
	loc := strings.TrimPrefix(strings.TrimPrefix(location, "https://"), "http://")
	loc = strings.TrimPrefix(loc, "//")
	host := loc
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	if host == "" || c.ResolveAt == nil {
		return "", 0, false
	}
	addrs, ok := c.ResolveAt(resolver, host)
	if !ok || len(addrs) == 0 {
		return "", 0, false
	}
	return dnswire.CanonicalName(host), addrs[0], true
}

// MailBanner grabs the banner of ip on one of the mail protocols
// ("imap", "pop3", "smtp").
func (c *Client) MailBanner(ip uint32, proto string) (string, bool) {
	return c.Web.MailBanner(ip, proto)
}

// Download fetches an executable from ip, for the malware case study.
func (c *Client) Download(ip uint32, path string) ([]byte, bool) {
	return c.Web.Download(ip, path)
}

// CertProbe exposes the TLS probe for the prefilter wiring.
func (c *Client) CertProbe(ip uint32, serverName string, sni bool) (websim.Cert, bool) {
	return c.Web.Certificate(ip, serverName, sni)
}

// TLSValid summarizes the TLS probe for the case-study detectors: does ip
// speak TLS for host, and with what kind of certificate.
func (c *Client) TLSValid(ip uint32, host string) (valid, selfSigned, ok bool) {
	cert, ok := c.Web.Certificate(ip, host, true)
	if !ok {
		return false, false, false
	}
	return cert.Valid, cert.SelfSigned, true
}

// Detonate downloads an executable from ip and reports whether dynamic
// analysis flags it as a malware downloader (the paper's Sandnet role).
func (c *Client) Detonate(ip uint32, path string) (malicious, ok bool) {
	payload, ok := c.Web.Download(ip, path)
	if !ok {
		return false, false
	}
	return websim.IsMalwareSample(payload), true
}
