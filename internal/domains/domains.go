// Package domains carries the scan datasets of the paper: the 155 domain
// names in 13 website categories chosen for DNS-response-forgery relevance
// (§3.2), the ground-truth domain whose authoritative name servers the
// measurement team operates, and the 15 top-level domains probed by the
// cache-snooping utilization study (§2.6).
package domains

// Category is one of the paper's 13 website categories.
type Category string

// The 13 categories of §3.2.
const (
	Ads         Category = "Ads"
	Adult       Category = "Adult"
	Alexa       Category = "Alexa"
	Antivirus   Category = "Antivirus"
	Banking     Category = "Banking"
	Dating      Category = "Dating"
	Filesharing Category = "Filesharing"
	Gambling    Category = "Gambling"
	Malware     Category = "Malware"
	MX          Category = "MX"
	NX          Category = "NX"
	Tracking    Category = "Tracking"
	Misc        Category = "Miscellaneous"
)

// AllCategories lists the categories in the paper's order.
var AllCategories = []Category{
	Ads, Adult, Alexa, Antivirus, Banking, Dating, Filesharing,
	Gambling, Malware, MX, NX, Tracking, Misc,
}

// Kind refines how a domain behaves for the simulated authoritative
// hierarchy and the prefilter.
type Kind uint8

// Domain kinds.
const (
	KindOrdinary    Kind = iota // fixed small set of IPs in the owner's ASes
	KindCDN                     // content delivery network: geo-dependent answers across many ASes
	KindNonexistent             // NXDOMAIN upstream
	KindMailHost                // resolves to mail servers with IMAP/POP3/SMTP banners
	KindGroundTruth             // the domain whose AuthNS we operate
)

// Domain is one scan-list entry.
type Domain struct {
	Name     string
	Category Category
	Kind     Kind
}

// GroundTruth is the domain the measurement team is authoritative for;
// resolvers that answer it correctly but mangle other domains are the
// interesting population.
const GroundTruth = "gt.dnsstudy.example.edu"

// ScanBase is the domain under which Internet-wide scans encode target
// addresses (prefix.hex-ip.ScanBase).
const ScanBase = "scan.dnsstudy.example.edu"

// SnoopedTLDs are the 15 top-level domains whose NS records the
// utilization study snoops hourly (§2.6).
var SnoopedTLDs = []string{
	"br", "cn", "co.uk", "com", "de", "fr", "in", "info",
	"it", "jp", "net", "nl", "org", "pl", "ru",
}

// List is the full 155-domain scan set in 13 categories.
var List = []Domain{
	// Ads: 9 domains associated with ad providers.
	{"ads.doubleclick.example", Ads, KindCDN},
	{"adserver.adtech.example", Ads, KindOrdinary},
	{"pagead.syndication.example", Ads, KindCDN},
	{"banners.openx.example", Ads, KindOrdinary},
	{"cdn.adnxs.example", Ads, KindCDN},
	{"track.zedo.example", Ads, KindOrdinary},
	{"static.criteo.example", Ads, KindCDN},
	{"pixel.rubicon.example", Ads, KindOrdinary},
	{"delivery.pubmatic.example", Ads, KindOrdinary},

	// Adult: 4 domains from the Alexa traffic ranking.
	{"youporn.com", Adult, KindCDN},
	{"adultfinder.com", Adult, KindOrdinary},
	{"xhamster.com", Adult, KindCDN},
	{"redtube.com", Adult, KindCDN},

	// Alexa: the Top-20 ranked domains.
	{"google.com", Alexa, KindCDN},
	{"facebook.com", Alexa, KindCDN},
	{"youtube.com", Alexa, KindCDN},
	{"yahoo.com", Alexa, KindCDN},
	{"baidu.com", Alexa, KindCDN},
	{"wikipedia.org", Alexa, KindCDN},
	{"twitter.com", Alexa, KindCDN},
	{"qq.com", Alexa, KindCDN},
	{"amazon.com", Alexa, KindCDN},
	{"taobao.com", Alexa, KindCDN},
	{"live.com", Alexa, KindCDN},
	{"linkedin.com", Alexa, KindCDN},
	{"sina.com.cn", Alexa, KindCDN},
	{"weibo.com", Alexa, KindCDN},
	{"blogspot.com", Alexa, KindCDN},
	{"vk.com", Alexa, KindCDN},
	{"yandex.ru", Alexa, KindCDN},
	{"ebay.com", Alexa, KindCDN},
	{"instagram.com", Alexa, KindCDN},
	{"bing.com", Alexa, KindCDN},

	// Antivirus: 15 domains of AV web pages and update servers.
	{"update.avast.example", Antivirus, KindCDN},
	{"definitions.symantec.example", Antivirus, KindCDN},
	{"liveupdate.norton.example", Antivirus, KindCDN},
	{"download.mcafee.example", Antivirus, KindCDN},
	{"update.kaspersky.example", Antivirus, KindCDN},
	{"db.eset.example", Antivirus, KindOrdinary},
	{"update.bitdefender.example", Antivirus, KindOrdinary},
	{"sigs.trendmicro.example", Antivirus, KindCDN},
	{"cloud.avira.example", Antivirus, KindOrdinary},
	{"update.fsecure.example", Antivirus, KindOrdinary},
	{"update.drweb.example", Antivirus, KindOrdinary},
	{"update.sophos.example", Antivirus, KindOrdinary},
	{"patterns.panda.example", Antivirus, KindOrdinary},
	{"defs.clamav.example", Antivirus, KindCDN},
	{"update.malwarebytes.example", Antivirus, KindCDN},

	// Banking: 20 domains of banking and payment websites.
	{"paypal.com", Banking, KindCDN},
	{"alipay.com", Banking, KindCDN},
	{"ebanking.ebay.com", Banking, KindCDN},
	{"chase.com", Banking, KindOrdinary},
	{"bankofamerica.com", Banking, KindOrdinary},
	{"wellsfargo.com", Banking, KindOrdinary},
	{"citibank.com", Banking, KindOrdinary},
	{"hsbc.com", Banking, KindOrdinary},
	{"barclays.co.uk", Banking, KindOrdinary},
	{"deutsche-bank.de", Banking, KindOrdinary},
	{"santander.com", Banking, KindOrdinary},
	{"bnpparibas.fr", Banking, KindOrdinary},
	{"unicredit.it", Banking, KindOrdinary},
	{"intesasanpaolo.it", Banking, KindOrdinary}, // mimicked by the two phishing hosts of §4.3
	{"sberbank.ru", Banking, KindOrdinary},
	{"icbc.com.cn", Banking, KindOrdinary},
	{"itau.com.br", Banking, KindOrdinary},
	{"bbva.es", Banking, KindOrdinary},
	{"ing.nl", Banking, KindOrdinary},
	{"visa.com", Banking, KindCDN},

	// Dating: 3 domains of dating sites.
	{"match.com", Dating, KindCDN},
	{"okcupid.com", Dating, KindOrdinary},
	{"plentyoffish.com", Dating, KindOrdinary},

	// Filesharing: 5 domains of file-sharing websites.
	{"kickass.to", Filesharing, KindOrdinary},
	{"thepiratebay.se", Filesharing, KindOrdinary},
	{"torrentz.eu", Filesharing, KindOrdinary},
	{"rapidgator.net", Filesharing, KindCDN},
	{"uploaded.net", Filesharing, KindCDN},

	// Gambling: 4 online betting and gambling domains.
	{"bet-at-home.com", Gambling, KindOrdinary},
	{"pokerstars.com", Gambling, KindOrdinary},
	{"bet365.com", Gambling, KindCDN},
	{"888casino.com", Gambling, KindOrdinary},

	// Malware: 13 domains listed by common malware blacklists.
	{"irc.zief.pl", Malware, KindOrdinary}, // Virut C&C (named in §4.2)
	{"c2.palevotracker.example", Malware, KindOrdinary},
	{"drop.zeustracker.example", Malware, KindOrdinary},
	{"cn-loader.wicked.example.cn", Malware, KindOrdinary}, // parked Chinese domain 1
	{"cn-seller.wicked.example.cn", Malware, KindOrdinary}, // parked Chinese domain 2
	{"pony.gate.example", Malware, KindOrdinary},
	{"feodo.c2.example", Malware, KindOrdinary},
	{"citadel.panel.example", Malware, KindOrdinary},
	{"andromeda.bot.example", Malware, KindOrdinary},
	{"cutwail.spam.example", Malware, KindOrdinary},
	{"torproject.org", Malware, KindCDN}, // blacklisted by some lists; parked per §4.2
	{"ramnit.sinkhole.example", Malware, KindOrdinary},
	{"conficker.c.example", Malware, KindOrdinary},

	// MX: 13 hostnames of IMAP/POP3/SMTP servers of 6 mail providers.
	{"imap.aim.com", MX, KindMailHost},
	{"smtp.aim.com", MX, KindMailHost},
	{"imap.gmail.com", MX, KindMailHost},
	{"pop.gmail.com", MX, KindMailHost},
	{"smtp.gmail.com", MX, KindMailHost},
	{"imap.mail.me.com", MX, KindMailHost},
	{"smtp.mail.me.com", MX, KindMailHost},
	{"imap-mail.outlook.com", MX, KindMailHost},
	{"smtp-mail.outlook.com", MX, KindMailHost},
	{"imap.mail.yahoo.com", MX, KindMailHost},
	{"smtp.mail.yahoo.com", MX, KindMailHost},
	{"imap.yandex.com", MX, KindMailHost},
	{"smtp.yandex.com", MX, KindMailHost},

	// NX: 8 nonexistent names, 5 NX subdomains of popular domains, and
	// 8 misspellings.
	{"rqzzkifu.example", NX, KindNonexistent},
	{"nxqqtest7.example", NX, KindNonexistent},
	{"doesnotexist-31337.example", NX, KindNonexistent},
	{"zzqmwnbv.example", NX, KindNonexistent},
	{"unregistered-a8k2.example", NX, KindNonexistent},
	{"nosuchdomain-x1.example", NX, KindNonexistent},
	{"blankzone-42.example", NX, KindNonexistent},
	{"emptyname-q9.example", NX, KindNonexistent},
	{"rswkllf.twitter.com", NX, KindNonexistent},
	{"qmxtknn.facebook.com", NX, KindNonexistent},
	{"zzpqjwd.google.com", NX, KindNonexistent},
	{"xkwquzn.amazon.com", NX, KindNonexistent},
	{"xskkjqz.wikipedia.org", NX, KindNonexistent},
	{"amason.com", NX, KindNonexistent},
	{"ghoogle.com", NX, KindNonexistent},
	{"wikipeida.org", NX, KindNonexistent},
	{"facebok.com", NX, KindNonexistent},
	{"twiter.com", NX, KindNonexistent},
	{"youtub.com", NX, KindNonexistent},
	{"payapl.com", NX, KindNonexistent},
	{"ebayy.com", NX, KindNonexistent},

	// Tracking: 5 domains of user-tracking libraries.
	{"cdn.bluecava.com", Tracking, KindCDN},
	{"tags.bluecava.com", Tracking, KindOrdinary},
	{"h.online-metrix.net", Tracking, KindCDN}, // ThreatMetrix
	{"js.threatmetrix.example", Tracking, KindOrdinary},
	{"beacon.tracksimple.example", Tracking, KindOrdinary},

	// Miscellaneous: update servers, intelligence agencies, OAuth
	// endpoints, and individual pages.
	{"update.adobe.example", Misc, KindCDN},
	{"ardownload.adobe.example", Misc, KindCDN},
	{"update.microsoft.com", Misc, KindCDN},
	{"windowsupdate.com", Misc, KindCDN},
	{"swcdn.apple.com", Misc, KindCDN},
	{"update.oracle.example", Misc, KindCDN},
	{"nsa.gov", Misc, KindOrdinary},
	{"gchq.gov.uk", Misc, KindOrdinary},
	{"mossad.gov.il", Misc, KindOrdinary},
	{"oauth.amazon.com", Misc, KindCDN},
	{"accounts.google.com", Misc, KindCDN},
	{"api.twitter.com", Misc, KindCDN},
	{"rotten.com", Misc, KindOrdinary},
	{"wikileaks.org", Misc, KindCDN},
	{"archive.org", Misc, KindOrdinary},
	{"pastebin.com", Misc, KindCDN},
	{"4chan.org", Misc, KindCDN},
	{"reddit.com", Misc, KindCDN},
	{"imgur.com", Misc, KindCDN},
	{"stackexchange.com", Misc, KindCDN},
	{"craigslist.org", Misc, KindOrdinary},
	{"duckduckgo.com", Misc, KindCDN},
	{"openstreetmap.org", Misc, KindOrdinary},
}

// ByCategory returns the scan set of a single category.
func ByCategory(cat Category) []Domain {
	var out []Domain
	for _, d := range List {
		if d.Category == cat {
			out = append(out, d)
		}
	}
	return out
}

// byName indexes List for the per-query lookup the resolver answer path
// performs; first entry wins, matching the linear scan it replaces.
var byName = func() map[string]Domain {
	m := make(map[string]Domain, len(List))
	for _, d := range List {
		if _, ok := m[d.Name]; !ok {
			m[d.Name] = d
		}
	}
	return m
}()

// ByName returns the list entry with the given name and whether it exists.
func ByName(name string) (Domain, bool) {
	d, ok := byName[name]
	return d, ok
}

// Names returns all scan-list names in order.
func Names() []string {
	out := make([]string, len(List))
	for i, d := range List {
		out[i] = d.Name
	}
	return out
}
