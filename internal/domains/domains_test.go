package domains

import "testing"

func TestListHas155Domains(t *testing.T) {
	if len(List) != 155 {
		t.Fatalf("domain list has %d entries, want 155 (§3.2)", len(List))
	}
}

func TestCategorySizesMatchPaper(t *testing.T) {
	want := map[Category]int{
		Ads:         9,
		Adult:       4,
		Alexa:       20,
		Antivirus:   15,
		Banking:     20,
		Dating:      3,
		Filesharing: 5,
		Gambling:    4,
		Malware:     13,
		MX:          13,
		NX:          21, // 8 NX + 5 NX subdomains + 8 misspellings
		Tracking:    5,
	}
	for cat, n := range want {
		if got := len(ByCategory(cat)); got != n {
			t.Errorf("category %s has %d domains, want %d", cat, got, n)
		}
	}
	// Misc absorbs the remainder.
	if got := len(ByCategory(Misc)); got != 155-132 {
		t.Errorf("Miscellaneous has %d domains, want %d", got, 155-132)
	}
}

func TestNoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range List {
		if seen[d.Name] {
			t.Errorf("duplicate domain %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestNXDomainsAreNonexistentKind(t *testing.T) {
	for _, d := range ByCategory(NX) {
		if d.Kind != KindNonexistent {
			t.Errorf("NX domain %q has kind %d", d.Name, d.Kind)
		}
	}
}

func TestMXDomainsAreMailHosts(t *testing.T) {
	for _, d := range ByCategory(MX) {
		if d.Kind != KindMailHost {
			t.Errorf("MX domain %q has kind %d", d.Name, d.Kind)
		}
	}
}

func TestByName(t *testing.T) {
	d, ok := ByName("irc.zief.pl")
	if !ok || d.Category != Malware {
		t.Errorf("ByName(irc.zief.pl) = %+v, %v", d, ok)
	}
	if _, ok := ByName("no-such-entry.example"); ok {
		t.Error("ByName accepted unknown domain")
	}
}

func TestSnoopedTLDCount(t *testing.T) {
	if len(SnoopedTLDs) != 15 {
		t.Errorf("snooped TLDs = %d, want 15 (§2.6)", len(SnoopedTLDs))
	}
}

func TestAllCategoriesCovered(t *testing.T) {
	counts := map[Category]int{}
	for _, d := range List {
		counts[d.Category]++
	}
	if len(counts) != 13 {
		t.Errorf("list covers %d categories, want 13", len(counts))
	}
	for _, cat := range AllCategories {
		if counts[cat] == 0 {
			t.Errorf("category %s empty", cat)
		}
	}
}
