package dnssec

import (
	"testing"
	"testing/quick"

	"goingwild/internal/dnswire"
	"goingwild/internal/lfsr"
)

func rrsetOf(name string, addrs ...uint32) []dnswire.ResourceRecord {
	var out []dnswire.ResourceRecord
	for _, a := range addrs {
		out = append(out, dnswire.ResourceRecord{
			Name: name, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.A{Addr: lfsr.U32ToAddr(a)},
		})
	}
	return out
}

func TestSignVerifyRoundTrip(t *testing.T) {
	key := NewZoneKey("wikileaks.org", 7)
	rrs := rrsetOf("wikileaks.org", 0x01020304, 0x05060708)
	sig := key.Sign("wikileaks.org", dnswire.ClassIN, 300, rrs)
	if !Verify(key.Public, &sig, "wikileaks.org", dnswire.ClassIN, rrs) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyRejectsTamperedRRset(t *testing.T) {
	key := NewZoneKey("paypal.com", 7)
	rrs := rrsetOf("paypal.com", 0x01020304)
	sig := key.Sign("paypal.com", dnswire.ClassIN, 300, rrs)
	forged := rrsetOf("paypal.com", 0x0A0B0C0D)
	if Verify(key.Public, &sig, "paypal.com", dnswire.ClassIN, forged) {
		t.Fatal("signature covered a forged RRset")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	key := NewZoneKey("a.example", 7)
	other := NewZoneKey("b.example", 7)
	rrs := rrsetOf("a.example", 1)
	sig := key.Sign("a.example", dnswire.ClassIN, 300, rrs)
	if Verify(other.Public, &sig, "a.example", dnswire.ClassIN, rrs) {
		t.Fatal("foreign key verified the signature")
	}
}

func TestVerifyOrderIndependent(t *testing.T) {
	key := NewZoneKey("x.example", 9)
	rrs := rrsetOf("x.example", 3, 1, 2)
	sig := key.Sign("x.example", dnswire.ClassIN, 300, rrs)
	shuffled := rrsetOf("x.example", 2, 3, 1)
	if !Verify(key.Public, &sig, "x.example", dnswire.ClassIN, shuffled) {
		t.Fatal("canonical ordering not applied")
	}
}

func TestVerifyCaseFolded(t *testing.T) {
	key := NewZoneKey("x.example", 9)
	rrs := rrsetOf("x.example", 3)
	sig := key.Sign("x.example", dnswire.ClassIN, 300, rrs)
	if !Verify(key.Public, &sig, "X.ExAmple", dnswire.ClassIN, rrs) {
		t.Fatal("0x20-mixed name broke validation")
	}
}

func TestKeyDeterminism(t *testing.T) {
	a := NewZoneKey("z.example", 42)
	b := NewZoneKey("z.example", 42)
	if string(a.Public) != string(b.Public) || a.KeyTag != b.KeyTag {
		t.Error("keys differ for identical (zone, seed)")
	}
	c := NewZoneKey("z.example", 43)
	if string(a.Public) == string(c.Public) {
		t.Error("different seeds produced the same key")
	}
}

func TestRRSIGWireRoundTrip(t *testing.T) {
	key := NewZoneKey("wikileaks.org", 7)
	rrs := rrsetOf("wikileaks.org", 0x01020304)
	sig := key.Sign("wikileaks.org", dnswire.ClassIN, 300, rrs)
	q := dnswire.NewQuery(1, "wikileaks.org", dnswire.TypeA, dnswire.ClassIN)
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.Answers = append(resp.Answers, rrs...)
	resp.AddAnswer("wikileaks.org", dnswire.ClassIN, 300, sig)
	resp.AddAnswer("wikileaks.org", dnswire.ClassIN, 3600, key.DNSKEY())
	wire, err := resp.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidateResponse(key.Public, got) {
		t.Fatal("validation failed after wire round trip")
	}
}

func TestValidateResponseRejectsUnsigned(t *testing.T) {
	key := NewZoneKey("wikileaks.org", 7)
	q := dnswire.NewQuery(1, "wikileaks.org", dnswire.TypeA, dnswire.ClassIN)
	resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
	resp.AddAnswer("wikileaks.org", dnswire.ClassIN, 300, dnswire.A{Addr: lfsr.U32ToAddr(0x7F000001)})
	if ValidateResponse(key.Public, resp) {
		t.Fatal("unsigned response validated")
	}
}

func TestSignatureNotForgeableProperty(t *testing.T) {
	key := NewZoneKey("gt.example", 11)
	rrs := rrsetOf("gt.example", 0xC0000201)
	sig := key.Sign("gt.example", dnswire.ClassIN, 300, rrs)
	f := func(flip uint16, idx uint8) bool {
		mut := sig
		mut.Signature = append([]byte(nil), sig.Signature...)
		mut.Signature[int(idx)%len(mut.Signature)] ^= byte(flip | 1)
		return !Verify(key.Public, &mut, "gt.example", dnswire.ClassIN, rrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
