// Package dnssec implements the response-authenticity machinery the
// paper's discussion section calls for (§5 "DNS Authenticity"): zone
// signing with Ed25519 (RFC 8080), RRset signature verification, and the
// client-side strategies for racing an in-transit injector — accept the
// first response (status quo) versus wait for a correctly signed answer
// and drop unsigned or badly signed ones.
package dnssec

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"goingwild/internal/dnswire"
)

// ZoneKey is a zone's signing key pair.
type ZoneKey struct {
	Zone    string
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
	KeyTag  uint16
}

// NewZoneKey derives a deterministic key for a zone from a seed — the
// reproduction's stand-in for offline key ceremonies.
func NewZoneKey(zone string, seed uint64) *ZoneKey {
	var material [ed25519.SeedSize]byte
	sum := sha256.Sum256(append(binary.BigEndian.AppendUint64(nil, seed), zone...))
	copy(material[:], sum[:])
	priv := ed25519.NewKeyFromSeed(material[:])
	pub := priv.Public().(ed25519.PublicKey)
	return &ZoneKey{
		Zone:    dnswire.CanonicalName(zone),
		Public:  pub,
		private: priv,
		KeyTag:  keyTag(pub),
	}
}

// keyTag derives the RFC 4034 key tag (simplified: a hash fold of the
// public key).
func keyTag(pub ed25519.PublicKey) uint16 {
	sum := sha256.Sum256(pub)
	return binary.BigEndian.Uint16(sum[:2])
}

// DNSKEY renders the zone's public key record.
func (k *ZoneKey) DNSKEY() dnswire.DNSKEY {
	return dnswire.DNSKEY{
		Flags:     257, // KSK
		Protocol:  3,
		Algorithm: dnswire.AlgoEd25519,
		PublicKey: append([]byte(nil), k.Public...),
	}
}

// signedData serializes an RRset canonically for signing: the RRSIG
// header fields followed by each record in canonical form, sorted.
func signedData(sig *dnswire.RRSIG, name string, class dnswire.Class, rrs []dnswire.ResourceRecord) []byte {
	buf := binary.BigEndian.AppendUint16(nil, uint16(sig.TypeCovered))
	buf = append(buf, sig.Algorithm, sig.Labels)
	buf = binary.BigEndian.AppendUint32(buf, sig.OrigTTL)
	buf = binary.BigEndian.AppendUint32(buf, sig.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, sig.Inception)
	buf = binary.BigEndian.AppendUint16(buf, sig.KeyTag)
	buf = append(buf, dnswire.CanonicalName(sig.SignerName)...)
	buf = append(buf, 0)
	var wires [][]byte
	for _, rr := range rrs {
		m := &dnswire.Message{}
		m.Answers = append(m.Answers, dnswire.ResourceRecord{
			Name: dnswire.CanonicalName(name), Class: class, TTL: sig.OrigTTL, Data: rr.Data,
		})
		w, err := m.PackBytes()
		if err != nil {
			continue
		}
		wires = append(wires, w[12:]) // strip the header
	}
	sort.Slice(wires, func(i, j int) bool { return string(wires[i]) < string(wires[j]) })
	for _, w := range wires {
		buf = append(buf, w...)
	}
	return buf
}

// Sign produces an RRSIG over the A/record set of name.
func (k *ZoneKey) Sign(name string, class dnswire.Class, ttl uint32, rrs []dnswire.ResourceRecord) dnswire.RRSIG {
	typeCovered := dnswire.TypeA
	if len(rrs) > 0 {
		typeCovered = rrs[0].Type()
	}
	sig := dnswire.RRSIG{
		TypeCovered: typeCovered,
		Algorithm:   dnswire.AlgoEd25519,
		Labels:      uint8(len(dnswire.SplitLabels(name))),
		OrigTTL:     ttl,
		Inception:   1420070400, // Jan 1 2015
		Expiration:  1451606400, // Jan 1 2016
		KeyTag:      k.KeyTag,
		SignerName:  k.Zone,
	}
	data := signedData(&sig, name, class, rrs)
	sig.Signature = ed25519.Sign(k.private, data)
	return sig
}

// Verify checks an RRSIG over an RRset against a public key.
func Verify(pub ed25519.PublicKey, sig *dnswire.RRSIG, name string, class dnswire.Class, rrs []dnswire.ResourceRecord) bool {
	if sig.Algorithm != dnswire.AlgoEd25519 || len(sig.Signature) != ed25519.SignatureSize {
		return false
	}
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	data := signedData(sig, name, class, rrs)
	return ed25519.Verify(pub, data, sig.Signature)
}

// SplitAnswer separates a response's answer section into the data RRset
// and its signatures.
func SplitAnswer(m *dnswire.Message) (rrs []dnswire.ResourceRecord, sigs []dnswire.RRSIG) {
	for _, rr := range m.Answers {
		if s, ok := rr.Data.(dnswire.RRSIG); ok {
			sigs = append(sigs, s)
			continue
		}
		rrs = append(rrs, rr)
	}
	return rrs, sigs
}

// ValidateResponse reports whether a response carries a correctly signed
// answer RRset under the given zone key. Each signature is checked
// against the records of exactly the type it covers.
func ValidateResponse(pub ed25519.PublicKey, m *dnswire.Message) bool {
	rrs, sigs := SplitAnswer(m)
	if len(rrs) == 0 || len(sigs) == 0 {
		return false
	}
	name := m.Question().Name
	for i := range sigs {
		var covered []dnswire.ResourceRecord
		for _, rr := range rrs {
			if rr.Type() == sigs[i].TypeCovered {
				covered = append(covered, rr)
			}
		}
		if len(covered) == 0 {
			continue
		}
		if Verify(pub, &sigs[i], name, dnswire.ClassIN, covered) {
			return true
		}
	}
	return false
}
