package devices

import (
	"math"
	"testing"
)

func TestWeightsSumToOne(t *testing.T) {
	if got := TotalWeight(); math.Abs(got-1.0) > 0.002 {
		t.Errorf("catalog weight sum = %.4f, want 1.0", got)
	}
}

func TestHardwareMarginalsMatchTable4(t *testing.T) {
	want := map[Hardware]float64{
		HWRouter:   0.341,
		HWEmbedded: 0.306,
		HWFirewall: 0.019,
		HWCamera:   0.018,
		HWDVR:      0.012,
		HWOther:    0.011,
		HWUnknown:  0.290,
	}
	got := HardwareShares()
	for hw, w := range want {
		if math.Abs(got[hw]-w) > 0.005 {
			t.Errorf("hardware %s share = %.3f, want %.3f", hw, got[hw], w)
		}
	}
}

func TestOSMarginalsMatchTable4(t *testing.T) {
	want := map[OS]float64{
		OSLinux:     0.225,
		OSZyNOS:     0.166,
		OSEmbedded:  0.213,
		OSUnix:      0.050,
		OSWindows:   0.036,
		OSSmartWare: 0.026,
		OSRouterOS:  0.017,
		OSCentOS:    0.021,
		OSUnknown:   0.231,
	}
	got := OSShares()
	for os, w := range want {
		if math.Abs(got[os]-w) > 0.006 {
			t.Errorf("OS %s share = %.3f, want %.3f", os, got[os], w)
		}
	}
}

func TestEveryModelServesSomething(t *testing.T) {
	for _, m := range Catalog {
		if len(m.Banners) == 0 {
			t.Errorf("model %s exposes no banners", m.Name)
		}
		for p, b := range m.Banners {
			if b == "" {
				t.Errorf("model %s has empty %s banner", m.Name, p)
			}
		}
	}
}

func TestModelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Catalog {
		if seen[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestDreamboxTokenPresent(t *testing.T) {
	// The paper's worked example: "dm500plus login" identifies a
	// PowerPC Linux DVR.
	for _, m := range Catalog {
		if m.Name == "dreambox-dm500" {
			if m.Hardware != HWDVR || m.OS != OSLinux {
				t.Errorf("dreambox classified as %s/%s", m.Hardware, m.OS)
			}
			if m.Banners[ProtoTelnet] != "dm500plus login:" {
				t.Errorf("dreambox telnet banner = %q", m.Banners[ProtoTelnet])
			}
			return
		}
	}
	t.Fatal("dreambox model missing")
}
