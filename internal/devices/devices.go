// Package devices catalogs the hardware/OS models behind open DNS
// resolvers. The virtual Internet uses the catalog to emit realistic
// FTP/HTTP/SSH/Telnet banner text; the fingerprinting pipeline compiles
// its regular-expression database against device *tokens* the same way
// the paper's authors manually compiled 2,245 expressions against
// aggregated banner responses (§2.4, Table 4).
package devices

// Hardware is the coarse device category of Table 4.
type Hardware uint8

// Hardware categories.
const (
	HWUnknown Hardware = iota
	HWRouter           // routers, modems, gateways
	HWEmbedded
	HWFirewall
	HWCamera
	HWDVR
	HWNAS
	HWDSLAM
	HWOther
)

// String returns the category name used in Table 4.
func (h Hardware) String() string {
	switch h {
	case HWRouter:
		return "Router"
	case HWEmbedded:
		return "Embedded"
	case HWFirewall:
		return "Firewall"
	case HWCamera:
		return "Camera"
	case HWDVR:
		return "DVR"
	case HWNAS:
		return "NAS"
	case HWDSLAM:
		return "DSLAM"
	case HWOther:
		return "Others"
	default:
		return "Unknown"
	}
}

// OS is the operating-system family of Table 4.
type OS uint8

// Operating systems.
const (
	OSUnknown OS = iota
	OSLinux
	OSZyNOS
	OSEmbedded
	OSUnix
	OSWindows
	OSSmartWare
	OSRouterOS
	OSCentOS
	OSOther
)

// String returns the OS name used in Table 4.
func (o OS) String() string {
	switch o {
	case OSLinux:
		return "Linux"
	case OSZyNOS:
		return "ZyNOS"
	case OSEmbedded:
		return "EmbeddedOS"
	case OSUnix:
		return "Unix"
	case OSWindows:
		return "Windows"
	case OSSmartWare:
		return "SmartWare"
	case OSRouterOS:
		return "RouterOS"
	case OSCentOS:
		return "CentOS"
	case OSOther:
		return "Others"
	default:
		return "Unknown"
	}
}

// Proto identifies one of the five banner-grabbed TCP services.
type Proto uint8

// Banner protocols (§2.4: FTP, HTTP, HTTPS, SSH, Telnet).
const (
	ProtoFTP Proto = iota
	ProtoHTTP
	ProtoHTTPS
	ProtoSSH
	ProtoTelnet
	NumProtos
)

// String returns the protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoFTP:
		return "ftp"
	case ProtoHTTP:
		return "http"
	case ProtoHTTPS:
		return "https"
	case ProtoSSH:
		return "ssh"
	case ProtoTelnet:
		return "telnet"
	default:
		return "unknown"
	}
}

// Model is one concrete device model.
type Model struct {
	Name     string
	Hardware Hardware
	OS       OS
	// Weight is the model's share among TCP-responsive resolvers;
	// weights sum to 1 and their marginals reproduce Table 4.
	Weight float64
	// Banners maps protocols to the banner text served on that port.
	// Absent protocols are closed on this model.
	Banners map[Proto]string
}

// Catalog lists all modeled devices. The Unknown entries return payload
// the fingerprint DB has no expression for, reproducing the paper's 29.3%
// unknown-hardware / 23.9% unknown-OS shares.
var Catalog = []Model{
	// --- Routers / modems / gateways: 34.1% -------------------------
	{
		Name: "zyxel-p660", Hardware: HWRouter, OS: OSZyNOS, Weight: 0.100,
		Banners: map[Proto]string{
			ProtoFTP:    "220 P-660HN-T1A FTP version 1.0 ready",
			ProtoHTTP:   "HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"P-660HN-T1A\"\r\nServer: RomPager/4.07 UPnP/1.0\r\n\r\nZyXEL router login",
			ProtoTelnet: "\r\nP-660HN-T1A login: Password: ZyNOS",
		},
	},
	{
		Name: "zyxel-amg1302", Hardware: HWRouter, OS: OSZyNOS, Weight: 0.066,
		Banners: map[Proto]string{
			ProtoHTTP:   "HTTP/1.1 200 OK\r\nServer: ZyXEL-RomPager/3.02\r\n\r\n<html><title>AMG1302-T10B</title>ZyNOS firmware</html>",
			ProtoTelnet: "AMG1302-T10B login: ZyNOS",
		},
	},
	{
		Name: "tplink-wr841", Hardware: HWRouter, OS: OSLinux, Weight: 0.050,
		Banners: map[Proto]string{
			ProtoHTTP:   "HTTP/1.1 401 N/A\r\nWWW-Authenticate: Basic realm=\"TP-LINK Wireless N Router WR841N\"\r\n\r\n",
			ProtoTelnet: "TP-LINK(R) TL-WR841N telnet interface",
		},
	},
	{
		Name: "dlink-dsl2640", Hardware: HWRouter, OS: OSLinux, Weight: 0.036,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"DSL-2640B\"\r\nServer: micro_httpd\r\n\r\n",
			ProtoFTP:  "220 DSL-2640B FTP server ready.",
		},
	},
	{
		Name: "mikrotik-rb750", Hardware: HWRouter, OS: OSRouterOS, Weight: 0.017,
		Banners: map[Proto]string{
			ProtoFTP:    "220 rb750 FTP server (MikroTik 5.26 RouterOS) ready",
			ProtoSSH:    "SSH-2.0-ROSSSH",
			ProtoTelnet: "MikroTik v5.26 Login:",
		},
	},
	{
		Name: "draytek-vigor", Hardware: HWRouter, OS: OSEmbedded, Weight: 0.024,
		Banners: map[Proto]string{
			ProtoHTTP:   "HTTP/1.1 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"Vigor router\"\r\nServer: DWS\r\n\r\n",
			ProtoTelnet: "DrayTek Vigor2830 telnet",
		},
	},
	{
		Name: "huawei-hg532", Hardware: HWRouter, OS: OSEmbedded, Weight: 0.022,
		Banners: map[Proto]string{
			ProtoHTTP:   "HTTP/1.1 200 OK\r\nServer: mini_httpd\r\n\r\n<html><title>HG532e Home Gateway</title></html>",
			ProtoTelnet: "HG532e login:",
		},
	},
	{
		Name: "smartax-mt880", Hardware: HWRouter, OS: OSSmartWare, Weight: 0.026,
		Banners: map[Proto]string{
			ProtoTelnet: "SmartAX MT880 SmartWare console login:",
			ProtoFTP:    "220 SmartAX FTP (SmartWare build 4.1) ready",
		},
	},
	// --- Embedded: 30.6% --------------------------------------------
	{
		Name: "goahead-generic", Hardware: HWEmbedded, OS: OSUnknown, Weight: 0.090,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: GoAhead-Webs\r\n\r\n<html>embedded device</html>",
		},
	},
	{
		Name: "rompager-cpe", Hardware: HWEmbedded, OS: OSUnknown, Weight: 0.080,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 401 Unauthorized\r\nServer: RomPager/4.51\r\nWWW-Authenticate: Basic realm=\"cpe\"\r\n\r\n",
		},
	},
	{
		Name: "serial2lan", Hardware: HWEmbedded, OS: OSEmbedded, Weight: 0.040,
		Banners: map[Proto]string{
			ProtoTelnet: "Serial to LAN converter CS-2000 console",
		},
	},
	{
		Name: "raspberrypi", Hardware: HWEmbedded, OS: OSLinux, Weight: 0.050,
		Banners: map[Proto]string{
			ProtoSSH:  "SSH-2.0-OpenSSH_6.0p1 Raspbian-4+deb7u2",
			ProtoHTTP: "HTTP/1.1 200 OK\r\nServer: Apache/2.2.22 (Raspbian)\r\n\r\n",
		},
	},
	{
		Name: "arduino-bridge", Hardware: HWEmbedded, OS: OSEmbedded, Weight: 0.020,
		Banners: map[Proto]string{
			ProtoTelnet: "Arduino Yun bridge console",
		},
	},
	{
		Name: "busybox-generic", Hardware: HWEmbedded, OS: OSLinux, Weight: 0.026,
		Banners: map[Proto]string{
			ProtoTelnet: "BusyBox v1.19.4 built-in shell (ash)",
		},
	},
	// --- Firewalls: 1.9% --------------------------------------------
	{
		Name: "fortigate-60", Hardware: HWFirewall, OS: OSUnix, Weight: 0.011,
		Banners: map[Proto]string{
			ProtoSSH:  "SSH-2.0-FortiSSH_3.0",
			ProtoHTTP: "HTTP/1.1 302 Found\r\nServer: xxxxxxxx-xxxxx\r\nLocation: /fortigate/login\r\n\r\n",
		},
	},
	{
		Name: "sonicwall-tz", Hardware: HWFirewall, OS: OSEmbedded, Weight: 0.008,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: SonicWALL\r\n\r\nSonicWALL TZ 210 administration",
		},
	},
	// --- Cameras: 1.8% ----------------------------------------------
	{
		Name: "hikvision-ds2", Hardware: HWCamera, OS: OSLinux, Weight: 0.010,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.1 401 Unauthorized\r\nServer: DVRDVS-Webs\r\nWWW-Authenticate: Basic realm=\"DS-2CD2032 IP CAMERA\"\r\n\r\n",
		},
	},
	{
		Name: "foscam-fi89", Hardware: HWCamera, OS: OSEmbedded, Weight: 0.008,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: Netwave IP Camera\r\n\r\nFoscam FI8918W",
		},
	},
	// --- DVRs: 1.2% (the paper's dm500plus token) --------------------
	{
		Name: "dreambox-dm500", Hardware: HWDVR, OS: OSLinux, Weight: 0.007,
		Banners: map[Proto]string{
			ProtoTelnet: "dm500plus login:",
			ProtoHTTP:   "HTTP/1.1 200 OK\r\nServer: Enigma WebInterface\r\n\r\nDreambox DM500+ PowerPC",
		},
	},
	{
		Name: "generic-dvr16", Hardware: HWDVR, OS: OSLinux, Weight: 0.005,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: thttpd\r\n\r\n<title>DVR16 Remote Viewer</title>",
		},
	},
	// --- NAS: 10,962 hosts (≈0.2%) -----------------------------------
	{
		Name: "synology-ds", Hardware: HWNAS, OS: OSLinux, Weight: 0.002,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n<title>Synology DiskStation</title>",
			ProtoFTP:  "220 Synology DS213 FTP server ready.",
		},
	},
	// --- DSLAM: 5,061 hosts (≈0.09%) ---------------------------------
	{
		Name: "ecidslam", Hardware: HWDSLAM, OS: OSEmbedded, Weight: 0.001,
		Banners: map[Proto]string{
			ProtoTelnet: "ECI Hi-FOCuS DSLAM maintenance terminal",
		},
	},
	// --- Others: ≈1.1% ------------------------------------------------
	{
		Name: "printer-jetdirect", Hardware: HWOther, OS: OSEmbedded, Weight: 0.006,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: HP-ChaiSOE/1.0\r\n\r\nJetDirect",
		},
	},
	{
		Name: "voip-gateway", Hardware: HWOther, OS: OSEmbedded, Weight: 0.005,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.1 200 OK\r\nServer: Grandstream GXW4008\r\n\r\n",
		},
	},
	// --- Servers (recognizable OS, generic hardware) -----------------
	{
		Name: "linux-server", Hardware: HWUnknown, OS: OSLinux, Weight: 0.039,
		Banners: map[Proto]string{
			ProtoSSH:  "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1.4",
			ProtoHTTP: "HTTP/1.1 200 OK\r\nServer: Apache/2.2.14 (Ubuntu)\r\n\r\n",
		},
	},
	{
		Name: "centos-server", Hardware: HWUnknown, OS: OSCentOS, Weight: 0.021,
		Banners: map[Proto]string{
			ProtoSSH:  "SSH-2.0-OpenSSH_5.3 CentOS-5.9",
			ProtoHTTP: "HTTP/1.1 403 Forbidden\r\nServer: Apache/2.2.3 (CentOS)\r\n\r\n",
		},
	},
	{
		Name: "freebsd-server", Hardware: HWUnknown, OS: OSUnix, Weight: 0.039,
		Banners: map[Proto]string{
			ProtoSSH: "SSH-2.0-OpenSSH_5.8p2 FreeBSD-20110503",
			ProtoFTP: "220 host FTP server (Version 6.00LS) ready. FreeBSD",
		},
	},
	{
		Name: "windows-server", Hardware: HWUnknown, OS: OSWindows, Weight: 0.036,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.1 200 OK\r\nServer: Microsoft-IIS/7.5\r\n\r\n",
			ProtoFTP:  "220 Microsoft FTP Service",
		},
	},
	{
		Name: "embedded-unknown-hw", Hardware: HWUnknown, OS: OSEmbedded, Weight: 0.079,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\nServer: eCos Embedded Web Server\r\n\r\n",
		},
	},
	{
		Name: "qnx-box", Hardware: HWUnknown, OS: OSOther, Weight: 0.015,
		Banners: map[Proto]string{
			ProtoTelnet: "QNX Neutrino RTOS (ttyp0) login:",
		},
	},
	// --- Unrecognizable payload (Unknown/Unknown) --------------------
	{
		Name: "unknown-blob", Hardware: HWUnknown, OS: OSUnknown, Weight: 0.040,
		Banners: map[Proto]string{
			ProtoHTTP: "HTTP/1.0 200 OK\r\n\r\n<html><body>it works</body></html>",
		},
	},
	{
		Name: "unknown-telnet", Hardware: HWUnknown, OS: OSUnknown, Weight: 0.021,
		Banners: map[Proto]string{
			ProtoTelnet: "login:",
		},
	},
}

// TotalWeight returns the catalog's weight sum (≈1).
func TotalWeight() float64 {
	var s float64
	for _, m := range Catalog {
		s += m.Weight
	}
	return s
}

// HardwareShares aggregates the catalog weights by hardware category.
func HardwareShares() map[Hardware]float64 {
	out := map[Hardware]float64{}
	total := TotalWeight()
	for _, m := range Catalog {
		out[m.Hardware] += m.Weight / total
	}
	return out
}

// OSShares aggregates the catalog weights by OS.
func OSShares() map[OS]float64 {
	out := map[OS]float64{}
	total := TotalWeight()
	for _, m := range Catalog {
		out[m.OS] += m.Weight / total
	}
	return out
}
