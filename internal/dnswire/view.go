package dnswire

import (
	"encoding/binary"
	"sync"
)

// This file is the zero-allocation decode path of the scan hot loop. A
// weekly sweep parses tens of millions of responses; building a full
// Message (header struct, question slice, name strings, boxed RData) for
// each one is what used to dominate the receiver profile. A View decodes
// the header and first question once, into storage it owns and reuses,
// and walks the record sections lazily on demand — no per-packet heap
// traffic at steady state when the View itself is pooled (GetView/PutView).

// View is a reusable, allocation-free decoder over one wire-format DNS
// message. Reset validates the header and the question section eagerly
// (the fields every receiver needs) and leaves the record sections to the
// walking accessors. A View must not be used concurrently, and the slice
// returned by QName is only valid until the next Reset.
type View struct {
	msg    []byte
	id     uint16
	flags  uint16
	counts [4]int
	qtype  Type
	qclass Class
	// name holds the first question's decoded name; the backing array is
	// reused across Resets.
	name   []byte
	ansOff int
}

// Reset points the view at msg, parsing the header and question section.
// The counts defense mirrors Unpack: section counts that cannot fit the
// message are rejected before any walking happens.
func (v *View) Reset(msg []byte) error {
	v.msg = msg
	v.name = v.name[:0]
	v.ansOff = 0
	if len(msg) < 12 {
		return ErrShortMessage
	}
	v.id = binary.BigEndian.Uint16(msg[0:])
	v.flags = binary.BigEndian.Uint16(msg[2:])
	for i := range v.counts {
		v.counts[i] = int(binary.BigEndian.Uint16(msg[4+2*i:]))
	}
	qd, an, ns, ar := v.counts[0], v.counts[1], v.counts[2], v.counts[3]
	if qd*5+an*11+ns*11+ar*11 > len(msg)-12 {
		return ErrTooManyRecords
	}
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		if i == 0 {
			v.name, off, err = appendNameBytes(v.name[:0], msg, off)
		} else {
			off, err = skipName(msg, off)
		}
		if err != nil {
			return err
		}
		if off+4 > len(msg) {
			return ErrShortMessage
		}
		if i == 0 {
			v.qtype = Type(binary.BigEndian.Uint16(msg[off:]))
			v.qclass = Class(binary.BigEndian.Uint16(msg[off+2:]))
		}
		off += 4
	}
	v.ansOff = off
	return nil
}

// ID returns the transaction ID.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) ID() uint16 { return v.id }

// QR reports the response flag.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) QR() bool { return v.flags&flagQR != 0 }

// TC reports the truncation flag.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) TC() bool { return v.flags&flagTC != 0 }

// RCode returns the response code.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) RCode() RCode { return RCode(v.flags & 0xF) }

// QDCount returns the question-section count.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) QDCount() int { return v.counts[0] }

// AnswerCount returns the answer-section count.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) AnswerCount() int { return v.counts[1] }

// QName returns the first question's name (dotted, original case, no
// trailing dot). The slice is owned by the view and valid until Reset.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) QName() []byte { return v.name }

// QType returns the first question's type.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) QType() Type { return v.qtype }

// QClass returns the first question's class.
//
//lint:hotpath pooled-view accessor on the receive path
func (v *View) QClass() Class { return v.qclass }

// walk visits count records starting at off, calling fn with each record's
// fixed fields and RDATA window. It returns the offset after the last
// record. A nil fn skips the records (used to seek past a section).
func (v *View) walk(off, count int, fn func(typ Type, class Class, ttl uint32, rdOff, rdLen int)) (int, error) {
	msg := v.msg
	var err error
	for i := 0; i < count; i++ {
		off, err = skipName(msg, off)
		if err != nil {
			return off, err
		}
		if off+10 > len(msg) {
			return off, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(msg[off:]))
		class := Class(binary.BigEndian.Uint16(msg[off+2:]))
		ttl := binary.BigEndian.Uint32(msg[off+4:])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
		off += 10
		if off+rdlen > len(msg) {
			return off, ErrShortMessage
		}
		if fn != nil {
			fn(typ, class, ttl, off, rdlen)
		}
		off += rdlen
	}
	return off, nil
}

// HasAnswerA reports whether the answer section carries at least one A
// record — the sweep receiver's "Answered" bit. The class is deliberately
// not checked, mirroring Message.AnswerAddrs. Malformed record sections
// read as unanswered; the header and question already validated.
func (v *View) HasAnswerA() bool {
	found := false
	//lint:allow errdrop malformed answer sections read as unanswered by design
	_, _ = v.walk(v.ansOff, v.counts[1], func(typ Type, _ Class, _ uint32, _, rdLen int) {
		if typ == TypeA && rdLen == 4 {
			found = true
		}
	})
	return found
}

// AppendAnswerA appends the IPv4 addresses of all A answer records to
// dst (big-endian uint32, the pipeline's address form) and returns the
// extended slice. With no A answers and a nil dst it allocates nothing.
func (v *View) AppendAnswerA(dst []uint32) []uint32 {
	//lint:allow errdrop malformed answer sections contribute no addresses by design
	_, _ = v.walk(v.ansOff, v.counts[1], func(typ Type, _ Class, _ uint32, rdOff, rdLen int) {
		if typ == TypeA && rdLen == 4 {
			dst = append(dst, binary.BigEndian.Uint32(v.msg[rdOff:]))
		}
	})
	return dst
}

// FirstAnswerNS returns the TTL of the first NS answer record, if any —
// what the cache-snooping probe reads off a resolver's cache view.
func (v *View) FirstAnswerNS() (ttl uint32, ok bool) {
	//lint:allow errdrop malformed answer sections read as uncached by design
	_, _ = v.walk(v.ansOff, v.counts[1], func(typ Type, _ Class, t uint32, _, _ int) {
		if typ == TypeNS && !ok {
			ttl, ok = t, true
		}
	})
	return ttl, ok
}

// HasAuthorityNS reports whether the authority section carries an NS
// record (the NS-only referral shape of §3.4's no-answer responses).
func (v *View) HasAuthorityNS() bool {
	off, err := v.walk(v.ansOff, v.counts[1], nil)
	if err != nil {
		return false
	}
	found := false
	//lint:allow errdrop malformed authority sections read as empty by design
	_, _ = v.walk(off, v.counts[2], func(typ Type, _ Class, _ uint32, _, _ int) {
		if typ == TypeNS {
			found = true
		}
	})
	return found
}

// AppendAnswerTXT appends the concatenated character-strings of every TXT
// answer record to dst, matching TXT.Joined over a full unpack. CHAOS
// version scans use it to read version.bind payloads without a Message.
func (v *View) AppendAnswerTXT(dst []byte) []byte {
	//lint:allow errdrop malformed answer sections contribute no text by design
	_, _ = v.walk(v.ansOff, v.counts[1], func(typ Type, _ Class, _ uint32, rdOff, rdLen int) {
		if typ != TypeTXT {
			return
		}
		for p := rdOff; p < rdOff+rdLen; {
			n := int(v.msg[p])
			p++
			if p+n > rdOff+rdLen {
				return // overrunning character-string: ignore the tail
			}
			dst = append(dst, v.msg[p:p+n]...)
			p += n
		}
	})
	return dst
}

// skipName advances past a wire-format name without decoding it. A
// compression pointer ends the name's direct encoding immediately.
//
//lint:hotpath per-response decode; one allocation here is one per packet
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrTruncatedName
		}
		b := msg[off]
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, ErrTruncatedName
			}
			return off + 2, nil
		case b&0xC0 != 0:
			return 0, ErrReservedLabel
		default:
			off += 1 + int(b)
		}
	}
}

// appendNameBytes is unpackName writing into a caller-owned byte slice
// instead of a strings.Builder, so a pooled View re-decodes names with no
// allocation at steady state. It returns the extended slice and the offset
// after the name's direct encoding.
func appendNameBytes(dst []byte, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	ptrSeen := 0
	end := -1
	for {
		if off >= len(msg) {
			return dst[:start], 0, ErrTruncatedName
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			return dst, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return dst[:start], 0, ErrTruncatedName
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return dst[:start], 0, ErrBadPointer
			}
			ptrSeen++
			if ptrSeen > maxPointerHops {
				return dst[:start], 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return dst[:start], 0, ErrReservedLabel
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return dst[:start], 0, ErrTruncatedName
			}
			if len(dst) > start {
				dst = append(dst, '.')
			}
			if len(dst)-start+n > maxNameWire {
				return dst[:start], 0, ErrNameTooLong
			}
			dst = append(dst, msg[off+1:off+1+n]...)
			off += 1 + n
		}
	}
}

// DecodeTargetQNameU32 recovers the probed target from a scan query name
// of the form prefix.hex-ip.base, as DecodeTargetQName does, but over the
// raw name bytes of a View and without allocating. base must be canonical
// (lower case, no trailing dot); the name's case is folded during the
// comparison.
//
//lint:hotpath per-response decode; one allocation here is one per packet
func DecodeTargetQNameU32(name []byte, base string) (uint32, bool) {
	nb := len(base)
	if nb == 0 || len(name) < nb+11 {
		// Shortest valid form is p.xxxxxxxx.base: 1+1+8+1 extra octets.
		return 0, false
	}
	sufStart := len(name) - nb
	if name[sufStart-1] != '.' {
		return 0, false
	}
	for i := 0; i < nb; i++ {
		c := name[sufStart+i]
		if 'A' <= c && c <= 'Z' {
			c |= 0x20
		}
		if c != base[i] {
			return 0, false
		}
	}
	hexEnd := sufStart - 1
	hexStart := hexEnd - 8
	if name[hexStart-1] != '.' {
		return 0, false
	}
	var u uint32
	for i := 0; i < 8; i++ {
		d, ok := unhex(name[hexStart+i])
		if !ok {
			return 0, false
		}
		u = u<<4 | uint32(d)
	}
	return u, true
}

// Decode0x20Bytes recovers up to n bits from the letter casing of a raw
// name, mirroring Decode0x20 without the string conversion.
//
//lint:hotpath per-response decode; one allocation here is one per packet
func Decode0x20Bytes(name []byte, n int) (uint32, int) {
	var bits uint32
	bit := 0
	for i := 0; i < len(name) && bit < n; i++ {
		c := name[i]
		if !isLetter(c) {
			continue
		}
		if c&0x20 == 0 { // upper case
			bits |= 1 << uint(bit)
		}
		bit++
	}
	return bits, bit
}

// viewPool recycles Views across receiver callbacks, which may run
// concurrently on different sender goroutines.
var viewPool = sync.Pool{New: func() any { return new(View) }}

// GetView returns a pooled View. Pair with PutView.
func GetView() *View { return viewPool.Get().(*View) }

// PutView returns a view to the pool. The caller must be done with every
// slice obtained from it (QName aliases pooled storage).
func PutView(v *View) {
	v.msg = nil
	viewPool.Put(v)
}
