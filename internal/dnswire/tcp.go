package dnswire

import (
	"encoding/binary"
	"fmt"
)

// TCP framing (RFC 1035 §4.2.2): DNS over TCP prefixes each message with
// a two-octet length. The scanner falls back to TCP when a UDP response
// arrives truncated (TC bit set).

// MaxUDPSize is the classic UDP payload ceiling for non-EDNS responders.
const MaxUDPSize = 512

// AddEDNS attaches an OPT pseudo-record advertising a UDP payload size
// (RFC 6891: the OPT record's CLASS field carries the size).
func (m *Message) AddEDNS(payloadSize uint16) {
	m.Additional = append(m.Additional, ResourceRecord{
		Name:  "",
		Class: Class(payloadSize),
		TTL:   0,
		Data:  OPT{},
	})
}

// EDNSPayloadSize returns the advertised EDNS UDP payload size of the
// message, if it carries an OPT record.
func (m *Message) EDNSPayloadSize() (uint16, bool) {
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			return uint16(rr.Class), true
		}
	}
	return 0, false
}

// PackTCP frames a message for a TCP stream.
func (m *Message) PackTCP() ([]byte, error) {
	wire, err := m.PackBytes()
	if err != nil {
		return nil, err
	}
	if len(wire) > 0xFFFF {
		return nil, fmt.Errorf("dnswire: message exceeds TCP frame limit")
	}
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	return out, nil
}

// UnpackTCP parses one length-prefixed message from the head of a TCP
// stream buffer, returning the message and the bytes consumed.
func UnpackTCP(stream []byte) (*Message, int, error) {
	if len(stream) < 2 {
		return nil, 0, ErrShortMessage
	}
	n := int(binary.BigEndian.Uint16(stream))
	if len(stream) < 2+n {
		return nil, 0, ErrShortMessage
	}
	m, err := Unpack(stream[2 : 2+n])
	if err != nil {
		return nil, 0, err
	}
	return m, 2 + n, nil
}

// Truncate returns a copy of the message fit for a UDP payload limit:
// when the packed size exceeds limit, the answer sections are dropped and
// the TC bit is set, inviting the client to retry over TCP.
func (m *Message) Truncate(limit int) (*Message, bool) {
	wire, err := m.PackBytes()
	if err != nil || len(wire) <= limit {
		return m, false
	}
	tc := &Message{Header: m.Header}
	tc.Header.TC = true
	tc.Questions = append(tc.Questions, m.Questions...)
	return tc, true
}
