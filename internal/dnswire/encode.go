package dnswire

import (
	"errors"
	"net/netip"
	"strings"
)

// This file implements the two request-encoding schemes of the paper.
//
// Internet-wide scans (§2.2) embed the hex-formatted target IP address in
// the queried name itself — prefix.hex-ip.domain — so the response
// identifies which host the request was sent to even when the reply comes
// back from a different source address (multi-homed hosts, DNS proxies).
//
// Domain scans (§3.3) query a fixed domain set, so the target cannot go in
// the name. Instead each previously discovered resolver gets a compact
// identifier of ⌈log2(#resolvers)⌉ ≤ 25 bits: 16 bits ride in the DNS
// transaction ID, 9 bits select one of 2^9 UDP source ports, and — because
// some resolvers rewrite the destination port of the response — the same
// 9 bits are encoded redundantly in the query name via 0x20 mixed-case
// encoding (Dagon et al.).

// ErrBadTargetQName reports a name that does not follow the
// prefix.hex-ip.domain scan encoding.
var ErrBadTargetQName = errors.New("dnswire: name is not a target-encoded scan qname")

// EncodeTargetQName builds the scan query name prefix.hex-ip.base for the
// given target. The prefix randomizes caching; base is the scan domain the
// measurement team is authoritative for. This sits on the scan hot path,
// so it avoids fmt.
func EncodeTargetQName(prefix string, target netip.Addr, base string) string {
	b := target.As4()
	cb := CanonicalName(base)
	out := make([]byte, 0, len(prefix)+10+len(cb))
	out = append(out, prefix...)
	out = append(out, '.')
	const hexdigits = "0123456789abcdef"
	for _, o := range b {
		out = append(out, hexdigits[o>>4], hexdigits[o&0xF])
	}
	out = append(out, '.')
	out = append(out, cb...)
	return string(out)
}

// DecodeTargetQName recovers the target address from a scan query name of
// the form prefix.hex-ip.base. base must match (case-insensitively) or the
// name is rejected.
func DecodeTargetQName(name, base string) (netip.Addr, error) {
	cn := CanonicalName(name)
	cb := CanonicalName(base)
	if !strings.HasSuffix(cn, "."+cb) {
		return netip.Addr{}, ErrBadTargetQName
	}
	rest := strings.TrimSuffix(cn, "."+cb)
	labels := strings.Split(rest, ".")
	if len(labels) < 2 {
		return netip.Addr{}, ErrBadTargetQName
	}
	hexip := labels[len(labels)-1]
	if len(hexip) != 8 {
		return netip.Addr{}, ErrBadTargetQName
	}
	var b [4]byte
	for i := 0; i < 4; i++ {
		hi, ok1 := unhex(hexip[2*i])
		lo, ok2 := unhex(hexip[2*i+1])
		if !ok1 || !ok2 {
			return netip.Addr{}, ErrBadTargetQName
		}
		b[i] = hi<<4 | lo
	}
	return netip.AddrFrom4(b), nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// ProbeIDBits is the identifier width used by domain scans. The paper
// derives 25 from ⌈log2(20,000,000)⌉; the split is fixed at 16 transaction
// ID bits plus 9 source-port bits.
const (
	ProbeIDBits   = 25
	probePortBits = 9
	// ProbePortCount is the number of distinct UDP source ports a domain
	// scan binds (2^9).
	ProbePortCount = 1 << probePortBits
	// MaxProbeID is the largest encodable resolver identifier.
	MaxProbeID = 1<<ProbeIDBits - 1
)

// ProbeID is a ≤25-bit resolver identifier carried inside a scan request.
type ProbeID uint32

// SplitProbeID decomposes id into the 16-bit transaction ID and the 9-bit
// source-port index.
func SplitProbeID(id ProbeID) (txid uint16, portIndex uint16) {
	return uint16(id & 0xFFFF), uint16(id >> 16 & (ProbePortCount - 1))
}

// JoinProbeID reassembles an identifier from its transaction ID and
// source-port index.
func JoinProbeID(txid, portIndex uint16) ProbeID {
	return ProbeID(txid) | ProbeID(portIndex&(ProbePortCount-1))<<16
}

// Encode0x20 re-cases the letters of name so that the first n letters
// carry bits (bit i of bits sets letter i to upper case). Non-letter
// octets are skipped and do not consume bits. It returns the encoded name
// and the number of bits actually embedded, which is limited by the count
// of ASCII letters in the name.
func Encode0x20(name string, bits uint32, n int) (string, int) {
	out := []byte(name)
	bit := 0
	for i := 0; i < len(out) && bit < n; i++ {
		c := out[i]
		if !isLetter(c) {
			continue
		}
		if bits>>uint(bit)&1 == 1 {
			out[i] = c &^ 0x20 // upper
		} else {
			out[i] = c | 0x20 // lower
		}
		bit++
	}
	return string(out), bit
}

// Decode0x20 recovers up to n bits from the letter casing of name,
// mirroring Encode0x20. It returns the bits and how many were read.
func Decode0x20(name string, n int) (uint32, int) {
	var bits uint32
	bit := 0
	for i := 0; i < len(name) && bit < n; i++ {
		c := name[i]
		if !isLetter(c) {
			continue
		}
		if c&0x20 == 0 { // upper case
			bits |= 1 << uint(bit)
		}
		bit++
	}
	return bits, bit
}

func isLetter(c byte) bool {
	c |= 0x20
	return 'a' <= c && 'z' >= c
}
