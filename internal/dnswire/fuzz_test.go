package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzUnpack hardens the wire decoder against hostile responders: no
// input may panic, and anything that unpacks must re-pack and unpack to
// the same structure where packable.
func FuzzUnpack(f *testing.F) {
	q := NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", TypeA, ClassIN)
	wire, _ := q.PackBytes()
	f.Add(wire)
	resp := NewResponse(q, RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, ClassIN, 300, TXT{Strings: []string{"x"}})
	resp.AddAuthority("scan.dnsstudy.example.edu", ClassIN, 60, SOA{MName: "ns1", RName: "h"})
	wire2, _ := resp.PackBytes()
	f.Add(wire2)
	f.Add([]byte{0, 1, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.PackBytes()
		if err != nil {
			return // some decodable messages are not canonical
		}
		if _, err := Unpack(repacked); err != nil {
			t.Fatalf("repacked message does not unpack: %v", err)
		}
	})
}

// FuzzView hardens the zero-alloc receive-path decoder: no input may
// panic Reset or any accessor, and a View that accepts a payload must
// agree with the allocating Unpack decoder on the header fields.
func FuzzView(f *testing.F) {
	q := NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", TypeA, ClassIN)
	wire, _ := q.PackBytes()
	f.Add(wire)
	resp := NewResponse(q, RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, ClassIN, 300, A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})})
	wire2, _ := resp.PackBytes()
	f.Add(wire2)
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3, 'f', 'o', 'o', 0, 0, 1, 0, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := GetView()
		defer PutView(v)
		if err := v.Reset(data); err != nil {
			return
		}
		// Drive every accessor: the walk over answer and authority
		// sections must tolerate any record layout Reset admitted.
		_ = v.ID()
		_ = v.QR()
		_ = v.TC()
		_ = v.RCode()
		_ = v.QName()
		_ = v.QType()
		_ = v.QClass()
		_ = v.HasAnswerA()
		_ = v.AppendAnswerA(nil)
		_ = v.AppendAnswerTXT(nil)
		_ = v.HasAuthorityNS()
		_, _ = v.FirstAnswerNS()
		if m, err := Unpack(data); err == nil {
			if m.Header.ID != v.ID() || m.Header.QR != v.QR() || m.Header.RCode != v.RCode() {
				t.Fatalf("View header (id=%d qr=%v rc=%v) disagrees with Unpack (id=%d qr=%v rc=%v)",
					v.ID(), v.QR(), v.RCode(), m.Header.ID, m.Header.QR, m.Header.RCode)
			}
		}
	})
}

// FuzzDecodeTargetQName guards the scan-response attribution path.
func FuzzDecodeTargetQName(f *testing.F) {
	f.Add("r1.c0a80101.scan.dnsstudy.example.edu")
	f.Add("scan.dnsstudy.example.edu")
	f.Add("..")
	f.Fuzz(func(t *testing.T, name string) {
		DecodeTargetQName(name, "scan.dnsstudy.example.edu")
	})
}
