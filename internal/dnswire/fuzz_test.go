package dnswire

import (
	"testing"
)

// FuzzUnpack hardens the wire decoder against hostile responders: no
// input may panic, and anything that unpacks must re-pack and unpack to
// the same structure where packable.
func FuzzUnpack(f *testing.F) {
	q := NewQuery(7, "r1.c0a80101.scan.dnsstudy.example.edu", TypeA, ClassIN)
	wire, _ := q.PackBytes()
	f.Add(wire)
	resp := NewResponse(q, RCodeNoError)
	resp.AddAnswer(q.Questions[0].Name, ClassIN, 300, TXT{Strings: []string{"x"}})
	resp.AddAuthority("scan.dnsstudy.example.edu", ClassIN, 60, SOA{MName: "ns1", RName: "h"})
	wire2, _ := resp.PackBytes()
	f.Add(wire2)
	f.Add([]byte{0, 1, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.PackBytes()
		if err != nil {
			return // some decodable messages are not canonical
		}
		if _, err := Unpack(repacked); err != nil {
			t.Fatalf("repacked message does not unpack: %v", err)
		}
	})
}

// FuzzDecodeTargetQName guards the scan-response attribution path.
func FuzzDecodeTargetQName(f *testing.F) {
	f.Add("r1.c0a80101.scan.dnsstudy.example.edu")
	f.Add("scan.dnsstudy.example.edu")
	f.Add("..")
	f.Fuzz(func(t *testing.T, name string) {
		DecodeTargetQName(name, "scan.dnsstudy.example.edu")
	})
}
