package dnswire

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestTargetQNameRoundTrip(t *testing.T) {
	base := "scan.example.edu"
	addr := netip.MustParseAddr("203.0.113.77")
	name := EncodeTargetQName("r7f3", addr, base)
	if name != "r7f3.cb00714d.scan.example.edu" {
		t.Errorf("encoded name = %q", name)
	}
	got, err := DecodeTargetQName(name, base)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != addr {
		t.Errorf("decoded %v, want %v", got, addr)
	}
}

func TestTargetQNameRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte, prefix uint16) bool {
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		name := EncodeTargetQName("p"+itoa(int(prefix)), addr, "Scan.Example.EDU")
		got, err := DecodeTargetQName(name, "scan.example.edu")
		return err == nil && got == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestDecodeTargetQNameRejects(t *testing.T) {
	cases := []string{
		"example.com",                  // wrong base
		"scan.example.edu",             // no labels before base
		"p1.zzzz714d.scan.example.edu", // bad hex
		"p1.cb0071.scan.example.edu",   // short hex
	}
	for _, name := range cases {
		if _, err := DecodeTargetQName(name, "scan.example.edu"); err == nil {
			t.Errorf("%q: decode accepted", name)
		}
	}
}

func TestProbeIDSplitJoin(t *testing.T) {
	ids := []ProbeID{0, 1, 0xFFFF, 0x10000, MaxProbeID, 12345678}
	for _, id := range ids {
		txid, port := SplitProbeID(id)
		if got := JoinProbeID(txid, port); got != id {
			t.Errorf("SplitProbeID/JoinProbeID(%d) = %d", id, got)
		}
	}
}

func TestProbeIDProperty(t *testing.T) {
	f := func(raw uint32) bool {
		id := ProbeID(raw & MaxProbeID)
		txid, port := SplitProbeID(id)
		return port < ProbePortCount && JoinProbeID(txid, port) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func Test0x20RoundTrip(t *testing.T) {
	name := "okcupid.com"
	bits := uint32(0x1A5)
	enc, n := Encode0x20(name, bits, 9)
	if n != 9 {
		t.Fatalf("embedded %d bits, want 9", n)
	}
	if CanonicalName(enc) != name {
		t.Errorf("encoding changed the name: %q", enc)
	}
	got, n2 := Decode0x20(enc, 9)
	if n2 != 9 || got != bits {
		t.Errorf("decoded %#x (%d bits), want %#x", got, n2, bits)
	}
}

func Test0x20RoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		bits := uint32(raw & 0x1FF)
		enc, n := Encode0x20("thepiratebay.se", bits, 9)
		got, m := Decode0x20(enc, 9)
		return n == 9 && m == 9 && got == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func Test0x20FewLetters(t *testing.T) {
	// Only 2 letters available: must report the truncated bit count.
	enc, n := Encode0x20("a1.b2", 0x3, 9)
	if n != 2 {
		t.Fatalf("embedded %d bits, want 2", n)
	}
	got, m := Decode0x20(enc, 9)
	if m != 2 || got != 0x3 {
		t.Errorf("decoded %#x (%d bits)", got, m)
	}
}

func Test0x20SkipsDigitsAndDots(t *testing.T) {
	enc, _ := Encode0x20("bet-at-home.com", 0x1FF, 9)
	got, _ := Decode0x20(enc, 9)
	if got != 0x1FF {
		t.Errorf("bits through punctuation = %#x", got)
	}
}

func TestEDNSHelpers(t *testing.T) {
	q := NewQuery(1, "chase.com", TypeANY, ClassIN)
	if _, ok := q.EDNSPayloadSize(); ok {
		t.Error("EDNS detected on a plain query")
	}
	q.AddEDNS(4096)
	size, ok := q.EDNSPayloadSize()
	if !ok || size != 4096 {
		t.Fatalf("EDNS size = %d/%v", size, ok)
	}
	// Survives the wire.
	wire, err := q.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	size, ok = got.EDNSPayloadSize()
	if !ok || size != 4096 {
		t.Errorf("EDNS size after round trip = %d/%v", size, ok)
	}
}

func TestTruncateSemantics(t *testing.T) {
	q := NewQuery(9, "big.example", TypeTXT, ClassIN)
	resp := NewResponse(q, RCodeNoError)
	for i := 0; i < 5; i++ {
		resp.AddAnswer("big.example", ClassIN, 60, TXT{Strings: []string{strings.Repeat("x", 200)}})
	}
	tc, truncated := resp.Truncate(MaxUDPSize)
	if !truncated {
		t.Fatal("oversized response not truncated")
	}
	if !tc.Header.TC || len(tc.Answers) != 0 {
		t.Errorf("truncated form = %+v", tc.Header)
	}
	if len(tc.Questions) != 1 {
		t.Error("question section lost on truncation")
	}
	// Small responses pass through unchanged.
	small := NewResponse(q, RCodeNoError)
	same, truncated := small.Truncate(MaxUDPSize)
	if truncated || same != small {
		t.Error("small response mangled")
	}
}
