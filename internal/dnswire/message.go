package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Header is the fixed 12-octet DNS message header with its flag bits
// broken out.
type Header struct {
	ID     uint16
	QR     bool // response flag
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	RCode  RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// ResourceRecord is a single entry of the answer, authority, or additional
// sections.
type ResourceRecord struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, derived from the typed body.
func (rr ResourceRecord) Type() Type {
	if rr.Data == nil {
		return TypeNone
	}
	return rr.Data.Type()
}

// String renders the record in zone-file style.
func (rr ResourceRecord) String() string {
	return fmt.Sprintf("%s. %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []ResourceRecord
	Authority  []ResourceRecord
	Additional []ResourceRecord
}

// maxUDPPayload is the classic 512-octet UDP ceiling; the scanners never
// need EDNS-sized responses, and responders truncate beyond it.
const maxUDPPayload = 512

// NewQuery builds a single-question query message with recursion desired,
// the shape every scan in the paper sends.
func NewQuery(id uint16, name string, typ Type, class Class) *Message {
	return &Message{
		Header:    Header{ID: id, RD: true, Opcode: OpcodeQuery},
		Questions: []Question{{Name: name, Type: typ, Class: class}},
	}
}

// NewResponse builds a response message answering q, echoing its question
// section as resolvers do.
func NewResponse(q *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:     q.Header.ID,
			QR:     true,
			Opcode: q.Header.Opcode,
			RD:     q.Header.RD,
			RA:     true,
			RCode:  rcode,
		},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}

// AddAnswer appends an answer record.
func (m *Message) AddAnswer(name string, class Class, ttl uint32, data RData) {
	m.Answers = append(m.Answers, ResourceRecord{Name: name, Class: class, TTL: ttl, Data: data})
}

// AddAuthority appends an authority-section record.
func (m *Message) AddAuthority(name string, class Class, ttl uint32, data RData) {
	m.Authority = append(m.Authority, ResourceRecord{Name: name, Class: class, TTL: ttl, Data: data})
}

// Question returns the first question, or a zero Question when the section
// is empty (tolerated because broken responders exist in the wild).
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// AnswerAddrs extracts all IPv4 addresses from A records in the answer
// section, the payload the prefilter operates on.
func (m *Message) AnswerAddrs() []netip.Addr {
	var addrs []netip.Addr
	for _, rr := range m.Answers {
		if a, ok := rr.Data.(A); ok {
			addrs = append(addrs, a.Addr)
		}
	}
	return addrs
}

// flag bit positions within the 16-bit flags word.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Pack appends the wire encoding of m to buf and returns the extended
// slice. Name compression is applied across all sections. The message is
// assembled in a message-local buffer (compression offsets are relative to
// the message start) and then appended, so buf may already hold unrelated
// framing such as a TCP length prefix.
func (m *Message) Pack(buf []byte) ([]byte, error) {
	msg, err := m.packLocal()
	if err != nil {
		return buf, err
	}
	return append(buf, msg...), nil
}

func (m *Message) packLocal() ([]byte, error) {
	return m.PackInto(make([]byte, 0, 128), make(map[string]int, 8))
}

// PackInto packs m from offset 0 of buf (truncated first) using the
// caller-supplied compression map (cleared first), so a pooled buffer and
// map serve many packs without per-message allocations. The result aliases
// buf's storage when capacity suffices.
func (m *Message) PackInto(buf []byte, cmp map[string]int) ([]byte, error) {
	buf = buf[:0]
	clear(cmp)
	var flags uint16
	if m.Header.QR {
		flags |= flagQR
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.AA {
		flags |= flagAA
	}
	if m.Header.TC {
		flags |= flagTC
	}
	if m.Header.RD {
		flags |= flagRD
	}
	if m.Header.RA {
		flags |= flagRA
	}
	flags |= uint16(m.Header.RCode & 0xF)

	buf = binary.BigEndian.AppendUint16(buf, m.Header.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additional)))

	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmp); err != nil {
			return buf, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]ResourceRecord{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if rr.Data == nil {
				return buf, fmt.Errorf("dnswire: record %q has nil data", rr.Name)
			}
			if buf, err = appendName(buf, rr.Name, cmp); err != nil {
				return buf, err
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
			buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
			buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
			// Reserve the RDLENGTH slot, then fill it after encoding.
			lenOff := len(buf)
			buf = append(buf, 0, 0)
			if buf, err = rr.Data.appendTo(buf, cmp); err != nil {
				return buf, err
			}
			rdlen := len(buf) - lenOff - 2
			if rdlen > 0xFFFF {
				return buf, fmt.Errorf("dnswire: rdata of %q exceeds 65535 bytes", rr.Name)
			}
			binary.BigEndian.PutUint16(buf[lenOff:], uint16(rdlen))
		}
	}
	return buf, nil
}

// PackBytes packs m into a fresh slice.
func (m *Message) PackBytes() ([]byte, error) {
	return m.packLocal()
}

// AppendQuery appends the wire form of a single-question query with
// recursion desired — the shape every scan probe takes — without building
// a Message. buf may be a pooled scratch slice; the result aliases it.
func AppendQuery(buf []byte, id uint16, name string, typ Type, class Class) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, flagRD)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = append(buf, 0, 0, 0, 0, 0, 0)
	var err error
	if buf, err = appendName(buf, name, nil); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(typ))
	buf = binary.BigEndian.AppendUint16(buf, uint16(class))
	return buf, nil
}

// EncodeNameWire returns the uncompressed wire encoding of name, for
// precomputing the constant suffix of streamed scan queries.
func EncodeNameWire(name string) ([]byte, error) {
	return appendName(nil, name, nil)
}

// AppendTargetQuery appends the wire form of one sweep probe — a
// recursion-desired query for prefix.hex-ip.base — writing labels straight
// into buf with no name assembly or Message. prefix is one raw label (its
// bytes, no length octet, ≤63 bytes of it used); baseWire is the scan
// base's precomputed encoding from EncodeNameWire, whose terminating root
// label closes the name. This is the sweep's per-target send cost, so it
// must not allocate when buf has capacity.
func AppendTargetQuery(buf []byte, id uint16, prefix []byte, target uint32, baseWire []byte, typ Type, class Class) []byte {
	buf = binary.BigEndian.AppendUint16(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, flagRD)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = append(buf, 0, 0, 0, 0, 0, 0)
	if len(prefix) > maxLabelWire {
		prefix = prefix[:maxLabelWire]
	}
	buf = append(buf, byte(len(prefix)))
	buf = append(buf, prefix...)
	const hexdigits = "0123456789abcdef"
	buf = append(buf, 8,
		hexdigits[target>>28], hexdigits[target>>24&0xF],
		hexdigits[target>>20&0xF], hexdigits[target>>16&0xF],
		hexdigits[target>>12&0xF], hexdigits[target>>8&0xF],
		hexdigits[target>>4&0xF], hexdigits[target&0xF])
	buf = append(buf, baseWire...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(typ))
	buf = binary.BigEndian.AppendUint16(buf, uint16(class))
	return buf
}

// Unpack decodes a wire-format message. It is tolerant of trailing
// garbage after the final section (observed from broken CPE resolvers) but
// strict about structural validity inside the declared sections.
func Unpack(msg []byte) (*Message, error) {
	m := new(Message)
	if err := UnpackInto(msg, m); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto is Unpack decoding into a caller-owned (typically pooled)
// Message: section slices are truncated and their capacity reused, so a
// message of steady shape — e.g. the single-question query the in-memory
// transport decodes per probe — settles to near-zero slice allocations.
// All sections are parsed; EDNS payload sniffing reads the additional
// section even on queries. On error m is left partially filled.
func UnpackInto(msg []byte, m *Message) error {
	if len(msg) < 12 {
		return ErrShortMessage
	}
	flags := binary.BigEndian.Uint16(msg[2:])
	m.Header = Header{
		ID:     binary.BigEndian.Uint16(msg[0:]),
		QR:     flags&flagQR != 0,
		Opcode: Opcode(flags >> 11 & 0xF),
		AA:     flags&flagAA != 0,
		TC:     flags&flagTC != 0,
		RD:     flags&flagRD != 0,
		RA:     flags&flagRA != 0,
		RCode:  RCode(flags & 0xF),
	}
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	// Each question needs ≥5 bytes, each record ≥11; reject counts that
	// cannot fit, a cheap defense against malicious count inflation.
	if qd*5+an*11+ns*11+ar*11 > len(msg)-12 {
		return ErrTooManyRecords
	}
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = unpackName(msg, off)
		if err != nil {
			return err
		}
		if off+4 > len(msg) {
			return ErrShortMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(msg[off:]))
		q.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	unpackSection := func(rrs []ResourceRecord, n int) ([]ResourceRecord, error) {
		for i := 0; i < n; i++ {
			var rr ResourceRecord
			rr.Name, off, err = unpackName(msg, off)
			if err != nil {
				return rrs, err
			}
			if off+10 > len(msg) {
				return rrs, ErrShortMessage
			}
			typ := Type(binary.BigEndian.Uint16(msg[off:]))
			rr.Class = Class(binary.BigEndian.Uint16(msg[off+2:]))
			rr.TTL = binary.BigEndian.Uint32(msg[off+4:])
			rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
			off += 10
			if off+rdlen > len(msg) {
				return rrs, ErrShortMessage
			}
			rr.Data, err = unpackRData(msg, off, rdlen, typ)
			if err != nil {
				return rrs, err
			}
			off += rdlen
			rrs = append(rrs, rr)
		}
		return rrs, nil
	}
	if m.Answers, err = unpackSection(m.Answers, an); err != nil {
		return err
	}
	if m.Authority, err = unpackSection(m.Authority, ns); err != nil {
		return err
	}
	if m.Additional, err = unpackSection(m.Additional, ar); err != nil {
		return err
	}
	return nil
}

// String renders the message in dig-like presentation form, for debugging
// and example output.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d %s %s qr=%v aa=%v tc=%v rd=%v ra=%v\n",
		m.Header.ID, m.Header.Opcode, m.Header.RCode,
		m.Header.QR, m.Header.AA, m.Header.TC, m.Header.RD, m.Header.RA)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s. %s %s\n", q.Name, q.Class, q.Type)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&sb, "%s\n", rr)
	}
	for _, rr := range m.Authority {
		fmt.Fprintf(&sb, ";; authority: %s\n", rr)
	}
	return sb.String()
}
