package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.PackBytes()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func TestPackUnpackQuery(t *testing.T) {
	q := NewQuery(0xBEEF, "r1.c0a80101.scan.example.edu", TypeA, ClassIN)
	wire := mustPack(t, q)
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Header.ID != 0xBEEF || got.Header.QR || !got.Header.RD {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("want 1 question, got %d", len(got.Questions))
	}
	if got.Questions[0].Name != "r1.c0a80101.scan.example.edu" {
		t.Errorf("question name = %q", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Errorf("question type/class = %v/%v", got.Questions[0].Type, got.Questions[0].Class)
	}
}

func TestPackUnpackAllRecordTypes(t *testing.T) {
	q := NewQuery(7, "example.com", TypeANY, ClassIN)
	resp := NewResponse(q, RCodeNoError)
	resp.AddAnswer("example.com", ClassIN, 300, A{Addr: netip.MustParseAddr("93.184.216.34")})
	resp.AddAnswer("example.com", ClassIN, 300, AAAA{Addr: netip.MustParseAddr("2606:2800:220:1::1")})
	resp.AddAnswer("example.com", ClassIN, 300, NS{Host: "ns1.example.com"})
	resp.AddAnswer("www.example.com", ClassIN, 300, CNAME{Target: "example.com"})
	resp.AddAnswer("34.216.184.93.in-addr.arpa", ClassIN, 300, PTR{Target: "example.com"})
	resp.AddAnswer("example.com", ClassIN, 300, MX{Preference: 10, Host: "mail.example.com"})
	resp.AddAnswer("example.com", ClassIN, 300, TXT{Strings: []string{"v=spf1 -all", "second"}})
	resp.AddAuthority("example.com", ClassIN, 300, SOA{
		MName: "ns1.example.com", RName: "hostmaster.example.com",
		Serial: 2015010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 86400,
	})
	wire := mustPack(t, resp)
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(got.Answers) != 7 {
		t.Fatalf("want 7 answers, got %d", len(got.Answers))
	}
	if a := got.Answers[0].Data.(A); a.Addr != netip.MustParseAddr("93.184.216.34") {
		t.Errorf("A = %v", a.Addr)
	}
	if a := got.Answers[1].Data.(AAAA); a.Addr != netip.MustParseAddr("2606:2800:220:1::1") {
		t.Errorf("AAAA = %v", a.Addr)
	}
	if ns := got.Answers[2].Data.(NS); ns.Host != "ns1.example.com" {
		t.Errorf("NS = %q", ns.Host)
	}
	if c := got.Answers[3].Data.(CNAME); c.Target != "example.com" {
		t.Errorf("CNAME = %q", c.Target)
	}
	if p := got.Answers[4].Data.(PTR); p.Target != "example.com" {
		t.Errorf("PTR = %q", p.Target)
	}
	if mx := got.Answers[5].Data.(MX); mx.Preference != 10 || mx.Host != "mail.example.com" {
		t.Errorf("MX = %+v", mx)
	}
	if txt := got.Answers[6].Data.(TXT); txt.Joined() != "v=spf1 -allsecond" {
		t.Errorf("TXT = %+v", txt)
	}
	soa := got.Authority[0].Data.(SOA)
	if soa.Serial != 2015010101 || soa.MName != "ns1.example.com" {
		t.Errorf("SOA = %+v", soa)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	q := NewQuery(1, "a.very.long.subdomain.of.example.com", TypeA, ClassIN)
	resp := NewResponse(q, RCodeNoError)
	for i := 0; i < 5; i++ {
		resp.AddAnswer("a.very.long.subdomain.of.example.com", ClassIN, 60,
			A{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})})
	}
	wire := mustPack(t, resp)
	// Uncompressed, each answer would repeat the 38-octet name; with
	// compression each answer name is a 2-octet pointer.
	if len(wire) > 12+44+5*(2+10+4)+16 {
		t.Errorf("message not compressed: %d bytes", len(wire))
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for _, rr := range got.Answers {
		if rr.Name != "a.very.long.subdomain.of.example.com" {
			t.Errorf("decompressed name = %q", rr.Name)
		}
	}
}

func TestUnpackRejectsMalformed(t *testing.T) {
	valid := mustPack(t, NewQuery(9, "example.com", TypeA, ClassIN))
	cases := map[string][]byte{
		"empty":           {},
		"short header":    valid[:8],
		"truncated name":  valid[:14],
		"pointer loop":    {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1},
		"forward pointer": {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x20, 0, 1, 0, 1},
		"reserved label":  {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x80, 0x01, 0, 1, 0, 1},
		"count overflow":  {0, 1, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0},
		"rdata overrun": func() []byte {
			m := NewQuery(9, "x.com", TypeA, ClassIN)
			resp := NewResponse(m, RCodeNoError)
			resp.AddAnswer("x.com", ClassIN, 1, A{Addr: netip.AddrFrom4([4]byte{1, 2, 3, 4})})
			b := mustPack(t, resp)
			return b[:len(b)-2]
		}(),
	}
	for name, wire := range cases {
		if _, err := Unpack(wire); err == nil {
			t.Errorf("%s: Unpack accepted malformed input", name)
		}
	}
}

func TestUnpackToleratesUnknownType(t *testing.T) {
	q := NewQuery(2, "x.example", Type(99), ClassIN)
	resp := NewResponse(q, RCodeNoError)
	resp.AddAnswer("x.example", ClassIN, 5, RawRData{RType: Type(99), Data: []byte{1, 2, 3}})
	wire := mustPack(t, resp)
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	raw, ok := got.Answers[0].Data.(RawRData)
	if !ok || !bytes.Equal(raw.Data, []byte{1, 2, 3}) {
		t.Errorf("raw rdata = %+v", got.Answers[0].Data)
	}
}

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM.", "example.com"},
		{"example.com", "example.com"},
		{".", ""},
		{"", ""},
		{"WwW.PayPal.CoM", "www.paypal.com"},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestValidName(t *testing.T) {
	long := strings.Repeat("a", 64)
	if ValidName(long + ".com") {
		t.Error("63+ octet label accepted")
	}
	if ValidName(strings.Repeat("abcd.", 64) + "com") {
		t.Error("255+ octet name accepted")
	}
	if !ValidName("a.b.c.example.com.") {
		t.Error("valid name rejected")
	}
	if ValidName("a..b.com") {
		t.Error("empty label accepted")
	}
}

func TestEqualNamesFold(t *testing.T) {
	if !EqualNamesFold("ExAmple.COM.", "example.com") {
		t.Error("case-folded names not equal")
	}
	if EqualNamesFold("example.com", "example.org") {
		t.Error("different names equal")
	}
}

// randomMessage builds a structurally valid random message for round-trip
// property testing.
func randomMessage(r *rand.Rand) *Message {
	name := func() string {
		labels := make([]string, 1+r.Intn(4))
		for i := range labels {
			n := 1 + r.Intn(10)
			b := make([]byte, n)
			for j := range b {
				b[j] = "abcdefghijklmnopqrstuvwxyz0123456789-"[r.Intn(37)]
			}
			labels[i] = string(b)
		}
		return strings.Join(labels, ".")
	}
	m := NewQuery(uint16(r.Uint32()), name(), TypeA, ClassIN)
	m.Header.QR = r.Intn(2) == 0
	m.Header.RCode = RCode(r.Intn(6))
	for i := r.Intn(4); i > 0; i-- {
		switch r.Intn(5) {
		case 0:
			m.AddAnswer(name(), ClassIN, r.Uint32()%86400,
				A{Addr: netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})})
		case 1:
			m.AddAnswer(name(), ClassIN, r.Uint32()%86400, NS{Host: name()})
		case 2:
			m.AddAnswer(name(), ClassIN, r.Uint32()%86400, CNAME{Target: name()})
		case 3:
			m.AddAnswer(name(), ClassIN, r.Uint32()%86400, TXT{Strings: []string{name()}})
		default:
			m.AddAnswer(name(), ClassIN, r.Uint32()%86400, MX{Preference: uint16(r.Uint32()), Host: name()})
		}
	}
	return m
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r.Seed(seed)
		m := randomMessage(r)
		wire, err := m.PackBytes()
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		if !reflect.DeepEqual(m.Header, got.Header) {
			t.Logf("header: %+v vs %+v", m.Header, got.Header)
			return false
		}
		if !reflect.DeepEqual(m.Questions, got.Questions) {
			t.Logf("questions: %+v vs %+v", m.Questions, got.Questions)
			return false
		}
		if !reflect.DeepEqual(m.Answers, got.Answers) {
			t.Logf("answers: %+v vs %+v", m.Answers, got.Answers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackNeverPanicsOnFuzzInput(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := mustPack(t, NewQuery(3, "fuzz.example.com", TypeA, ClassIN))
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), base...)
		for j := r.Intn(6); j >= 0; j-- {
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		}
		Unpack(b) // must not panic; errors are fine
	}
}
