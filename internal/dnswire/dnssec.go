package dnswire

import (
	"encoding/binary"
	"fmt"
)

// DNSSEC record types (RFC 4034), used by the §5 response-authenticity
// experiment: can a validating client defeat an in-transit injector that
// races the legitimate answer?
const (
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

// AlgoEd25519 is the Ed25519 DNSSEC algorithm number (RFC 8080).
const AlgoEd25519 = 15

// DNSKEY is a zone's public key record.
type DNSKEY struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK
	Protocol  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (DNSKEY) Type() Type { return TypeDNSKEY }

func (k DNSKEY) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, k.Flags)
	buf = append(buf, k.Protocol, k.Algorithm)
	return append(buf, k.PublicKey...), nil
}

func (k DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %x", k.Flags, k.Protocol, k.Algorithm, k.PublicKey)
}

// RRSIG is a signature over an RRset (RFC 4034 §3 layout; names inside
// RDATA are never compressed).
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// Type implements RData.
func (RRSIG) Type() Type { return TypeRRSIG }

func (s RRSIG) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, uint16(s.TypeCovered))
	buf = append(buf, s.Algorithm, s.Labels)
	buf = binary.BigEndian.AppendUint32(buf, s.OrigTTL)
	buf = binary.BigEndian.AppendUint32(buf, s.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, s.Inception)
	buf = binary.BigEndian.AppendUint16(buf, s.KeyTag)
	var err error
	if buf, err = appendName(buf, s.SignerName, nil); err != nil {
		return buf, err
	}
	return append(buf, s.Signature...), nil
}

func (s RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %s. %x",
		s.TypeCovered, s.Algorithm, s.Labels, s.OrigTTL, s.SignerName, s.Signature)
}

// unpackDNSSEC decodes the DNSSEC rdata bodies; wired into unpackRData.
func unpackDNSSEC(msg []byte, off, length int, typ Type) (RData, error) {
	body := msg[off : off+length]
	switch typ {
	case TypeDNSKEY:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: DNSKEY rdata length %d", ErrBadRData, len(body))
		}
		return DNSKEY{
			Flags:     binary.BigEndian.Uint16(body),
			Protocol:  body[2],
			Algorithm: body[3],
			PublicKey: append([]byte(nil), body[4:]...),
		}, nil
	case TypeRRSIG:
		if len(body) < 18 {
			return nil, fmt.Errorf("%w: RRSIG rdata length %d", ErrBadRData, len(body))
		}
		signer, next, err := unpackName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if next > off+length {
			return nil, fmt.Errorf("%w: RRSIG signer overruns rdata", ErrBadRData)
		}
		return RRSIG{
			TypeCovered: Type(binary.BigEndian.Uint16(body)),
			Algorithm:   body[2],
			Labels:      body[3],
			OrigTTL:     binary.BigEndian.Uint32(body[4:]),
			Expiration:  binary.BigEndian.Uint32(body[8:]),
			Inception:   binary.BigEndian.Uint32(body[12:]),
			KeyTag:      binary.BigEndian.Uint16(body[16:]),
			SignerName:  signer,
			Signature:   append([]byte(nil), msg[next:off+length]...),
		}, nil
	default:
		return RawRData{RType: typ, Data: append([]byte(nil), body...)}, nil
	}
}
