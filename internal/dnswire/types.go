// Package dnswire implements the DNS wire format (RFC 1035 and friends) as
// used by the Going Wild measurement pipeline: message packing and
// unpacking with name compression, the record types needed for resolver
// scanning (A, NS, CNAME, SOA, PTR, MX, TXT, AAAA, OPT), the CHAOS class
// used for version fingerprinting, and the 0x20 query-name encoding the
// paper uses to carry identifier bits redundantly inside a fixed domain
// name (Dagon et al., CCS 2008; Going Wild §3.3).
//
// The codec is allocation-conscious: Pack appends into a caller-provided
// buffer and Unpack decodes into value types without retaining references
// to the input slice, so buffers can be pooled by high-rate scanners.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Record types used throughout the pipeline.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for t, or TYPEn for unknown types.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. The pipeline uses IN for resolution scans and CH
// (CHAOS) for version.bind / version.server fingerprinting (§2.4).
type Class uint16

// Classes understood by the codec.
const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the conventional mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code. The weekly scans bucket resolvers by the
// most common codes (NOERROR, REFUSED, SERVFAIL; Figure 1).
type RCode uint8

// Response codes (RFC 1035 §4.1.1, RFC 2136).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the conventional mnemonic for rc, or RCODEn when unknown.
func (rc RCode) String() string {
	if s, ok := rcodeNames[rc]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Opcode is a DNS operation code.
type Opcode uint8

// Opcodes (only Query is used by the scanners).
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
)

// String returns the conventional mnemonic for op.
func (op Opcode) String() string {
	switch op {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	default:
		return fmt.Sprintf("OPCODE%d", uint8(op))
	}
}
