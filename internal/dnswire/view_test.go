package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// viewSample builds a response exercising every section the view walks:
// compressed names, A answers (plus a non-A answer), authority NS, and an
// EDNS OPT record.
func viewSample(t *testing.T) ([]byte, *Message) {
	t.Helper()
	m := NewQuery(0xBEEF, "r1a2b.c0a80001.Scan-Base.example", TypeA, ClassIN)
	m.Header.QR = true
	m.Header.RCode = RCodeNoError
	m.AddAnswer("r1a2b.c0a80001.scan-base.example", ClassIN, 60, A{Addr: netip.MustParseAddr("192.0.2.7")})
	m.AddAnswer("r1a2b.c0a80001.scan-base.example", ClassIN, 60, CNAME{Target: "alias.example"})
	m.AddAnswer("alias.example", ClassIN, 60, A{Addr: netip.MustParseAddr("192.0.2.9")})
	m.AddAuthority("example", ClassIN, 3600, NS{Host: "ns1.example"})
	m.AddEDNS(4096)
	wire, err := m.PackBytes()
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	return wire, m
}

func TestViewMatchesUnpack(t *testing.T) {
	wire, _ := viewSample(t)
	m, err := Unpack(wire)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	var v View
	if err := v.Reset(wire); err != nil {
		t.Fatalf("view reset: %v", err)
	}
	if v.ID() != m.Header.ID || v.QR() != m.Header.QR || v.RCode() != m.Header.RCode || v.TC() != m.Header.TC {
		t.Fatalf("header mismatch: view id=%d qr=%v rcode=%v", v.ID(), v.QR(), v.RCode())
	}
	if v.QDCount() != len(m.Questions) || v.AnswerCount() != len(m.Answers) {
		t.Fatalf("counts mismatch: qd=%d an=%d", v.QDCount(), v.AnswerCount())
	}
	if got, want := string(v.QName()), m.Questions[0].Name; got != want {
		t.Fatalf("qname: got %q want %q", got, want)
	}
	if v.QType() != m.Questions[0].Type || v.QClass() != m.Questions[0].Class {
		t.Fatalf("question type/class mismatch")
	}
	if !v.HasAnswerA() {
		t.Fatalf("HasAnswerA = false, want true")
	}
	wantAddrs := m.AnswerAddrs()
	gotAddrs := v.AppendAnswerA(nil)
	if len(gotAddrs) != len(wantAddrs) {
		t.Fatalf("A answers: got %d want %d", len(gotAddrs), len(wantAddrs))
	}
	for i, a := range wantAddrs {
		b := a.As4()
		want := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		if gotAddrs[i] != want {
			t.Fatalf("A answer %d: got %08x want %08x", i, gotAddrs[i], want)
		}
	}
	if !v.HasAuthorityNS() {
		t.Fatalf("HasAuthorityNS = false, want true")
	}
}

func TestViewNoAnswers(t *testing.T) {
	m := NewResponse(NewQuery(7, "a.example", TypeA, ClassIN), RCodeNXDomain)
	wire, err := m.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := v.Reset(wire); err != nil {
		t.Fatal(err)
	}
	if v.HasAnswerA() || v.HasAuthorityNS() {
		t.Fatalf("empty response reported answers")
	}
	if got := v.AppendAnswerA(nil); got != nil {
		t.Fatalf("AppendAnswerA(nil) on empty = %v, want nil (no allocation)", got)
	}
	if _, ok := v.FirstAnswerNS(); ok {
		t.Fatalf("FirstAnswerNS found NS in empty response")
	}
}

func TestViewFirstAnswerNS(t *testing.T) {
	m := NewResponse(NewQuery(3, "com", TypeNS, ClassIN), RCodeNoError)
	m.AddAnswer("com", ClassIN, 777, NS{Host: "a.gtld-servers.net"})
	m.AddAnswer("com", ClassIN, 888, NS{Host: "b.gtld-servers.net"})
	wire, err := m.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := v.Reset(wire); err != nil {
		t.Fatal(err)
	}
	ttl, ok := v.FirstAnswerNS()
	if !ok || ttl != 777 {
		t.Fatalf("FirstAnswerNS = %d,%v want 777,true", ttl, ok)
	}
}

func TestViewAnswerTXTMatchesJoined(t *testing.T) {
	m := NewResponse(NewQuery(9, "version.bind", TypeTXT, ClassCH), RCodeNoError)
	m.AddAnswer("version.bind", ClassCH, 0, TXT{Strings: []string{"9.9", ".5-P1"}})
	m.AddAnswer("version.bind", ClassCH, 0, TXT{Strings: []string{"-extra"}})
	wire, err := m.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	want := ""
	mm, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range mm.Answers {
		if txt, ok := rr.Data.(TXT); ok {
			want += txt.Joined()
		}
	}
	var v View
	if err := v.Reset(wire); err != nil {
		t.Fatal(err)
	}
	if got := string(v.AppendAnswerTXT(nil)); got != want {
		t.Fatalf("TXT: got %q want %q", got, want)
	}
}

func TestViewMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 11),
		// count inflation: claims 0xFFFF questions in 12 bytes.
		{0, 1, 0x80, 0, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0},
		// question name runs off the end.
		{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 63},
	}
	var v View
	for i, msg := range cases {
		if err := v.Reset(msg); err == nil {
			t.Fatalf("case %d: Reset accepted malformed message", i)
		}
	}
}

func TestDecodeTargetQNameU32(t *testing.T) {
	const base = "scan-base.example"
	for _, u := range []uint32{0, 1, 0xC0A80001, 0xFFFFFFFF, 0xDEADBEEF} {
		name := EncodeTargetQName("r1a2b", netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}), base)
		got, ok := DecodeTargetQNameU32([]byte(name), base)
		if !ok || got != u {
			t.Fatalf("round trip %08x: got %08x, ok=%v (name %q)", u, got, ok, name)
		}
		// The string decoder must agree.
		addr, err := DecodeTargetQName(name, base)
		if err != nil {
			t.Fatalf("DecodeTargetQName(%q): %v", name, err)
		}
		b := addr.As4()
		if w := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]); w != got {
			t.Fatalf("decoders disagree: %08x vs %08x", w, got)
		}
	}
	// Mixed case in the base suffix must fold.
	if got, ok := DecodeTargetQNameU32([]byte("p.c0a80001.Scan-Base.EXAMPLE"), base); !ok || got != 0xC0A80001 {
		t.Fatalf("case folding failed: %08x %v", got, ok)
	}
	bad := []string{
		"",
		"scan-base.example",                // no labels before base
		"c0a80001.scan-base.example",       // no prefix label
		"p.c0a8001.scan-base.example",      // 7 hex digits
		"p.c0a80001x.scan-base.example",    // 9-char label
		"p.c0a8z001.scan-base.example",     // non-hex digit
		"p.c0a80001.scan-base.example.org", // wrong base
		"p.c0a80001.xscan-base.example",    // base not on label boundary
	}
	for _, name := range bad {
		if _, ok := DecodeTargetQNameU32([]byte(name), base); ok {
			t.Fatalf("accepted bad name %q", name)
		}
	}
}

func TestDecode0x20BytesMatchesString(t *testing.T) {
	for _, bits := range []uint32{0, 0x1FF, 0xAB, 0x155} {
		name, n := Encode0x20("www.net-flix01.example", bits, 9)
		if n != 9 {
			t.Fatalf("embedded %d bits", n)
		}
		sb, sn := Decode0x20(name, 9)
		bb, bn := Decode0x20Bytes([]byte(name), 9)
		if sb != bb || sn != bn {
			t.Fatalf("decoders disagree: string %x/%d bytes %x/%d", sb, sn, bb, bn)
		}
		if bb != bits {
			t.Fatalf("got %x want %x", bb, bits)
		}
	}
}

func TestSkipName(t *testing.T) {
	wire, _ := viewSample(t)
	// Walk the first question with both implementations.
	name, off1, err := unpackName(wire, 12)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := skipName(wire, 12)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off2 {
		t.Fatalf("skipName offset %d, unpackName offset %d (name %q)", off2, off1, name)
	}
}

func TestAppendTargetQueryMatchesAppendQuery(t *testing.T) {
	const base = "scan-base.example"
	baseWire, err := EncodeNameWire(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []uint32{1, 0xC0A80001, 0xFFFFFFFF} {
		addr := netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
		name := EncodeTargetQName("r1a2b", addr, base)
		want, err := AppendQuery(nil, 0x1234, name, TypeA, ClassIN)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendTargetQuery(nil, 0x1234, []byte("r1a2b"), u, baseWire, TypeA, ClassIN)
		if !bytes.Equal(got, want) {
			t.Fatalf("wire mismatch for %08x:\n got %x\nwant %x", u, got, want)
		}
	}
}

func TestUnpackIntoReuse(t *testing.T) {
	wire1, _ := viewSample(t)
	m2 := NewResponse(NewQuery(5, "other.example", TypeA, ClassIN), RCodeNoError)
	wire2, err := m2.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := UnpackInto(wire1, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 3 || len(m.Additional) != 1 {
		t.Fatalf("first unpack: %d answers %d additional", len(m.Answers), len(m.Additional))
	}
	// Reuse must fully replace the previous contents.
	if err := UnpackInto(wire2, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 0 || len(m.Additional) != 0 || len(m.Questions) != 1 {
		t.Fatalf("reused unpack kept stale sections: %d answers", len(m.Answers))
	}
	if m.Questions[0].Name != "other.example" || m.Header.ID != 5 {
		t.Fatalf("reused unpack wrong content: %+v", m.Questions[0])
	}
	// And match a fresh Unpack field for field.
	fresh, err := Unpack(wire2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header != fresh.Header {
		t.Fatalf("header mismatch after reuse")
	}
}

func TestPackIntoReuse(t *testing.T) {
	_, m := viewSample(t)
	want, err := m.PackBytes()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 16) // deliberately small: must grow correctly
	cmp := make(map[string]int, 8)
	for i := 0; i < 3; i++ {
		got, err := m.PackInto(buf, cmp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("PackInto round %d differs from PackBytes", i)
		}
		buf = got[:0]
	}
}

func TestViewResetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	wire, _ := viewSample(t)
	var v View
	if err := v.Reset(wire); err != nil { // warm the name buffer
		t.Fatal(err)
	}
	var sink []uint32
	allocs := testing.AllocsPerRun(200, func() {
		if err := v.Reset(wire); err != nil {
			t.Fatal(err)
		}
		if !v.QR() || !v.HasAnswerA() || !v.HasAuthorityNS() {
			t.Fatal("bad view state")
		}
		sink = v.AppendAnswerA(sink[:0])
	})
	if allocs != 0 {
		t.Fatalf("View decode allocates %.1f per run, want 0", allocs)
	}
}
