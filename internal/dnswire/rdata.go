package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// ErrBadRData reports a malformed RDATA section.
var ErrBadRData = errors.New("dnswire: malformed rdata")

// RData is the typed body of a resource record.
type RData interface {
	// Type returns the record type this body belongs to.
	Type() Type
	// appendTo appends the wire form of the body to buf. cmp is the
	// message-wide compression map (nil disables compression).
	appendTo(buf []byte, cmp map[string]int) ([]byte, error)
	// String renders the body in zone-file style presentation format.
	String() string
}

// A is an IPv4 address record body.
type A struct{ Addr netip.Addr }

// Type implements RData.
func (A) Type() Type { return TypeA }

func (a A) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	if !a.Addr.Is4() {
		return buf, fmt.Errorf("%w: A record address %v is not IPv4", ErrBadRData, a.Addr)
	}
	b := a.Addr.As4()
	return append(buf, b[:]...), nil
}

func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record body.
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

func (a AAAA) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return buf, fmt.Errorf("%w: AAAA record address %v is not IPv6", ErrBadRData, a.Addr)
	}
	b := a.Addr.As16()
	return append(buf, b[:]...), nil
}

func (a AAAA) String() string { return a.Addr.String() }

// NS is a name server record body.
type NS struct{ Host string }

// Type implements RData.
func (NS) Type() Type { return TypeNS }

func (n NS) appendTo(buf []byte, cmp map[string]int) ([]byte, error) {
	return appendName(buf, n.Host, cmp)
}

func (n NS) String() string { return n.Host + "." }

// CNAME is a canonical name record body.
type CNAME struct{ Target string }

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

func (c CNAME) appendTo(buf []byte, cmp map[string]int) ([]byte, error) {
	return appendName(buf, c.Target, cmp)
}

func (c CNAME) String() string { return c.Target + "." }

// PTR is a pointer record body (rDNS).
type PTR struct{ Target string }

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

func (p PTR) appendTo(buf []byte, cmp map[string]int) ([]byte, error) {
	return appendName(buf, p.Target, cmp)
}

func (p PTR) String() string { return p.Target + "." }

// MX is a mail exchanger record body.
type MX struct {
	Preference uint16
	Host       string
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

func (m MX) appendTo(buf []byte, cmp map[string]int) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, m.Preference)
	return appendName(buf, m.Host, cmp)
}

func (m MX) String() string { return fmt.Sprintf("%d %s.", m.Preference, m.Host) }

// SOA is a start-of-authority record body.
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

func (s SOA) appendTo(buf []byte, cmp map[string]int) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, s.MName, cmp); err != nil {
		return buf, err
	}
	if buf, err = appendName(buf, s.RName, cmp); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint32(buf, s.Serial)
	buf = binary.BigEndian.AppendUint32(buf, s.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, s.Retry)
	buf = binary.BigEndian.AppendUint32(buf, s.Expire)
	buf = binary.BigEndian.AppendUint32(buf, s.Minimum)
	return buf, nil
}

func (s SOA) String() string {
	return fmt.Sprintf("%s. %s. %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT is a text record body. CHAOS version.bind responses use a TXT record
// in class CH; each string is at most 255 octets on the wire.
type TXT struct{ Strings []string }

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

func (t TXT) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	if len(t.Strings) == 0 {
		// An empty TXT is encoded as a single empty character-string.
		return append(buf, 0), nil
	}
	for _, s := range t.Strings {
		for len(s) > 255 {
			buf = append(buf, 255)
			buf = append(buf, s[:255]...)
			s = s[255:]
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (t TXT) String() string {
	quoted := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// Joined returns the concatenation of all strings, the form version
// fingerprinting matches against.
func (t TXT) Joined() string { return strings.Join(t.Strings, "") }

// OPT is a pseudo-record body (EDNS0, RFC 6891). Only the payload size in
// the class field matters for the scanners; options are carried opaquely.
type OPT struct{ Options []byte }

// Type implements RData.
func (OPT) Type() Type { return TypeOPT }

func (o OPT) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	return append(buf, o.Options...), nil
}

func (o OPT) String() string { return fmt.Sprintf("OPT %d bytes", len(o.Options)) }

// RawRData carries the undecoded body of a record type the codec does not
// model. Unknown types are preserved byte-for-byte so that scans tolerate
// exotic responders (§5, "Completeness").
type RawRData struct {
	RType Type
	Data  []byte
}

// Type implements RData.
func (r RawRData) Type() Type { return r.RType }

func (r RawRData) appendTo(buf []byte, _ map[string]int) ([]byte, error) {
	return append(buf, r.Data...), nil
}

func (r RawRData) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }

// unpackRData decodes the body of a record of the given type from
// msg[off:off+length]. The full message is supplied so compressed names
// inside RDATA resolve.
func unpackRData(msg []byte, off, length int, typ Type) (RData, error) {
	if off+length > len(msg) {
		return nil, ErrTruncatedName
	}
	body := msg[off : off+length]
	switch typ {
	case TypeA:
		if len(body) != 4 {
			return nil, fmt.Errorf("%w: A rdata length %d", ErrBadRData, len(body))
		}
		return A{Addr: netip.AddrFrom4([4]byte(body))}, nil
	case TypeAAAA:
		if len(body) != 16 {
			return nil, fmt.Errorf("%w: AAAA rdata length %d", ErrBadRData, len(body))
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(body))}, nil
	case TypeNS:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return NS{Host: name}, nil
	case TypeCNAME:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return CNAME{Target: name}, nil
	case TypePTR:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		return PTR{Target: name}, nil
	case TypeMX:
		if len(body) < 3 {
			return nil, fmt.Errorf("%w: MX rdata length %d", ErrBadRData, len(body))
		}
		pref := binary.BigEndian.Uint16(body)
		name, _, err := unpackName(msg, off+2)
		if err != nil {
			return nil, err
		}
		return MX{Preference: pref, Host: name}, nil
	case TypeSOA:
		mname, next, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, next, err := unpackName(msg, next)
		if err != nil {
			return nil, err
		}
		if next+20 > off+length {
			return nil, fmt.Errorf("%w: SOA fixed fields truncated", ErrBadRData)
		}
		f := msg[next:]
		return SOA{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(f[0:]),
			Refresh: binary.BigEndian.Uint32(f[4:]),
			Retry:   binary.BigEndian.Uint32(f[8:]),
			Expire:  binary.BigEndian.Uint32(f[12:]),
			Minimum: binary.BigEndian.Uint32(f[16:]),
		}, nil
	case TypeTXT:
		var strs []string
		for i := 0; i < len(body); {
			n := int(body[i])
			i++
			if i+n > len(body) {
				return nil, fmt.Errorf("%w: TXT string overruns rdata", ErrBadRData)
			}
			strs = append(strs, string(body[i:i+n]))
			i += n
		}
		return TXT{Strings: strs}, nil
	case TypeOPT:
		return OPT{Options: append([]byte(nil), body...)}, nil
	case TypeDNSKEY, TypeRRSIG:
		return unpackDNSSEC(msg, off, length, typ)
	default:
		return RawRData{RType: typ, Data: append([]byte(nil), body...)}, nil
	}
}
