package dnswire

import (
	"errors"
	"strings"
)

// Errors reported by the name codec.
var (
	ErrNameTooLong    = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label inside name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrReservedLabel  = errors.New("dnswire: reserved label type")
	ErrTrailingBytes  = errors.New("dnswire: trailing bytes after message")
	ErrShortMessage   = errors.New("dnswire: message too short")
	ErrTooManyRecords = errors.New("dnswire: record count exceeds message size")
)

const (
	maxNameWire  = 255
	maxLabelWire = 63
	// maxPointerHops bounds compression pointer chains; a legitimate
	// message cannot need more hops than it has labels.
	maxPointerHops = 128
)

// CanonicalName lowercases a domain name and strips a single trailing dot,
// producing the form used as map keys throughout the pipeline. The empty
// string denotes the DNS root.
func CanonicalName(name string) string {
	name = strings.TrimSuffix(name, ".")
	// Fast path: already lower case.
	lower := true
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return name
	}
	return strings.ToLower(name)
}

// SplitLabels splits a canonical name into its labels. The root returns nil.
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// ValidName reports whether name (with or without trailing dot) satisfies
// the RFC 1035 length limits. It does not restrict the label alphabet:
// scanners deliberately emit unusual octets (e.g. 0x20-mixed case).
func ValidName(name string) bool {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return true
	}
	if len(name)+2 > maxNameWire { // labels + length octets + root
		return false
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > maxLabelWire {
			return false
		}
	}
	return true
}

// appendName appends the wire encoding of name to buf, using cmp to emit
// and record compression pointers. cmp maps canonical suffixes to their
// wire offsets; pass nil to disable compression (required inside RDATA of
// types that predate compression-awareness, and for root-only names).
func appendName(buf []byte, name string, cmp map[string]int) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name)+2 > maxNameWire {
		return buf, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i, label := range labels {
		if label == "" {
			return buf, ErrEmptyLabel
		}
		if len(label) > maxLabelWire {
			return buf, ErrLabelTooLong
		}
		if cmp != nil {
			suffix := CanonicalName(strings.Join(labels[i:], "."))
			if off, ok := cmp[suffix]; ok && off < 0x4000 {
				return append(buf, 0xC0|byte(off>>8), byte(off)), nil
			}
			if len(buf) < 0x4000 {
				cmp[suffix] = len(buf)
			}
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly compressed name starting at off in msg.
// It returns the decoded name (no trailing dot, original case preserved)
// and the offset of the first byte after the name's direct encoding.
func unpackName(msg []byte, off int) (string, int, error) {
	// Decode into a stack buffer and convert once: one allocation per
	// name instead of one per strings.Builder growth. The buffer never
	// reallocates because appendNameBytes enforces maxNameWire.
	var scratch [maxNameWire]byte
	b, end, err := appendNameBytes(scratch[:0], msg, off)
	if err != nil {
		return "", 0, err
	}
	return string(b), end, nil
}

// EqualNamesFold reports whether two domain names are equal under DNS case
// folding (ASCII case-insensitive label comparison), tolerating an optional
// trailing dot on either side.
func EqualNamesFold(a, b string) bool {
	return CanonicalName(a) == CanonicalName(b)
}
