package geodb

import (
	"fmt"

	"goingwild/internal/prand"
)

// Dynamic-pool rDNS tokens the churn analysis greps for (§2.5: 67.4% of
// the one-day-churners' rDNS records carry dynamic-assignment tokens such
// as broadband, dialup, and dynamic).
var dynamicTokens = []string{"dynamic", "dyn", "broadband", "dialup", "dsl", "pool", "ppp"}

// staticTokens name statically assigned infrastructure.
var staticTokens = []string{"static", "srv", "host", "biz"}

// RDNSName synthesizes the PTR target for an address, or "" when the
// owning network publishes no reverse zone for it. The share of addresses
// with rDNS and the dynamic-token share are world-seeded so aggregate
// statistics are stable.
func (db *DB) RDNSName(seed uint64, u uint32) string {
	loc := db.LookupU32(u)
	as := loc.AS
	// Roughly a quarter of consumer pools publish no PTR at all.
	if prand.UnitOf(seed, 0x9D45, uint64(u)) < 0.25 {
		return ""
	}
	o1, o2, o3, o4 := u>>24, u>>16&0xFF, u>>8&0xFF, u&0xFF
	if as.DynamicPool {
		// Dynamic pools carry a dynamic token ~70% of the time; the
		// rest use neutral host labels, which is what produces the
		// paper's 67.4% token-match rate among one-day churners.
		if prand.UnitOf(seed, 0x70CE, uint64(u)) < 0.70 {
			tok := dynamicTokens[prand.IntN(prand.Hash(seed, 0x70CF, uint64(u)), len(dynamicTokens))]
			return fmt.Sprintf("%d-%d-%d-%d.%s.%s.example", o1, o2, o3, o4, tok, as.Name)
		}
		return fmt.Sprintf("host-%d-%d-%d-%d.%s.example", o1, o2, o3, o4, as.Name)
	}
	tok := staticTokens[prand.IntN(prand.Hash(seed, 0x57A7, uint64(u)), len(staticTokens))]
	return fmt.Sprintf("%s-%d-%d-%d-%d.%s.example", tok, o1, o2, o3, o4, as.Name)
}

// HasDynamicToken reports whether an rDNS name carries one of the
// dynamic-assignment tokens, the exact check of §2.5.
func HasDynamicToken(rdns string) bool {
	for _, tok := range dynamicTokens {
		if containsToken(rdns, tok) {
			return true
		}
	}
	return false
}

// containsToken matches tok as a dot- or dash-delimited label fragment.
func containsToken(s, tok string) bool {
	for i := 0; i+len(tok) <= len(s); i++ {
		if s[i:i+len(tok)] != tok {
			continue
		}
		beforeOK := i == 0 || s[i-1] == '.' || s[i-1] == '-'
		j := i + len(tok)
		afterOK := j == len(s) || s[j] == '.' || s[j] == '-'
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}
