package geodb

// RIR identifies a Regional Internet Registry (Table 2 groups resolver
// fluctuation by these five registries).
type RIR uint8

// The five RIRs.
const (
	RIPE RIR = iota
	APNIC
	LACNIC
	ARIN
	AFRINIC
)

// String returns the registry's conventional name.
func (r RIR) String() string {
	switch r {
	case RIPE:
		return "RIPE"
	case APNIC:
		return "APNIC"
	case LACNIC:
		return "LACNIC"
	case ARIN:
		return "ARIN"
	case AFRINIC:
		return "AFRINIC"
	default:
		return "UNKNOWN"
	}
}

// AllRIRs lists the registries in the paper's Table 2 order.
var AllRIRs = []RIR{RIPE, APNIC, LACNIC, ARIN, AFRINIC}

// Country describes one country's share of the open-resolver population.
// Week0 and Week55 are responding-resolver counts in thousands at the
// paper scale (Jan 31, 2014 and Feb 6, 2015); the Top-10 rows are taken
// from Table 1 and the remaining entries are chosen so that the aggregate
// matches the paper's totals (≈31.2M responders at week 0, ≈22.6M at week
// 55), the narrated country movements (Argentina −75.0%, Great Britain
// −63.6%, Malaysia +59.7%, Lebanon +76.7%), and the Feb-2015 country mix
// of Figure 4-a.
type Country struct {
	Code   string
	RIR    RIR
	Week0  float64 // thousands of responders, Jan 31 2014
	Week55 float64 // thousands of responders, Feb 6 2015
}

// Countries is the registry's country table. Order is stable (used for
// deterministic block assignment).
var Countries = []Country{
	// Table 1 Top 10 (NOERROR-dominated counts; scaled to ALL below).
	{"US", ARIN, 2958.6, 2537.3},
	{"CN", APNIC, 2418.9, 2104.7},
	{"TR", RIPE, 1439.7, 976.2},
	{"VN", APNIC, 1393.6, 1039.1},
	{"MX", LACNIC, 1372.9, 1175.3},
	{"IN", APNIC, 1269.7, 1431.5},
	{"TH", APNIC, 1214.0, 564.5},
	{"IT", RIPE, 1172.0, 722.8},
	{"CO", LACNIC, 1062.1, 677.6},
	{"TW", APNIC, 1061.2, 453.0},
	// Countries with narrated dynamics.
	{"AR", LACNIC, 960.0, 240.0}, // −75.0%, dominated by one telecom AS
	{"KR", APNIC, 880.0, 430.0},  // ISP with 434k resolvers vanished
	{"GB", RIPE, 420.0, 152.9},   // −63.6%
	{"MY", APNIC, 120.0, 191.6},  // +59.7%
	{"LB", RIPE, 60.0, 106.0},    // +76.7%
	// Figure 4-a visible countries (Feb 2015 shares).
	{"ID", APNIC, 700.0, 640.0},
	{"IR", RIPE, 650.0, 622.0},
	{"EG", AFRINIC, 520.0, 498.0},
	{"BR", LACNIC, 560.0, 480.0},
	{"RU", RIPE, 560.0, 480.0},
	{"PL", RIPE, 470.0, 427.0},
	{"DZ", AFRINIC, 400.0, 391.0},
	{"JP", APNIC, 400.0, 267.0},
	// Censoring countries named in §4.2 case narration.
	{"GR", RIPE, 150.0, 120.0},
	{"BE", RIPE, 120.0, 100.0},
	{"MN", APNIC, 40.0, 35.0},
	{"EE", RIPE, 50.0, 40.0},
	// Long tail, sized to bring totals near the paper's aggregates.
	{"DE", RIPE, 350.0, 260.0},
	{"FR", RIPE, 330.0, 250.0},
	{"UA", RIPE, 300.0, 220.0},
	{"ES", RIPE, 280.0, 210.0},
	{"RO", RIPE, 240.0, 180.0},
	{"NL", RIPE, 200.0, 150.0},
	{"CA", ARIN, 250.0, 200.0},
	{"AU", APNIC, 180.0, 140.0},
	{"ZA", AFRINIC, 160.0, 130.0},
	{"NG", AFRINIC, 120.0, 110.0},
	{"KE", AFRINIC, 80.0, 75.0},
	{"SA", RIPE, 150.0, 130.0},
	{"AE", RIPE, 100.0, 90.0},
	{"PK", APNIC, 200.0, 180.0},
	{"BD", APNIC, 150.0, 140.0},
	{"PH", APNIC, 180.0, 160.0},
	{"LK", APNIC, 60.0, 55.0},
	{"KZ", RIPE, 90.0, 80.0},
	{"BG", RIPE, 130.0, 110.0},
	{"CZ", RIPE, 110.0, 90.0},
	{"HU", RIPE, 100.0, 85.0},
	{"AT", RIPE, 90.0, 75.0},
	{"CH", RIPE, 80.0, 70.0},
	{"SE", RIPE, 90.0, 75.0},
	{"PT", RIPE, 110.0, 90.0},
	{"IL", RIPE, 80.0, 70.0},
	{"CL", LACNIC, 150.0, 120.0},
	{"PE", LACNIC, 130.0, 110.0},
	{"VE", LACNIC, 140.0, 115.0},
	{"EC", LACNIC, 90.0, 75.0},
	{"GT", LACNIC, 45.0, 38.0},
	{"DO", LACNIC, 40.0, 34.0},
	{"UY", LACNIC, 40.0, 34.0},
	{"MA", AFRINIC, 90.0, 80.0},
	{"TN", AFRINIC, 60.0, 55.0},
	{"IQ", RIPE, 70.0, 65.0},
	{"SY", RIPE, 40.0, 37.0},
	{"JO", RIPE, 35.0, 32.0},
	{"KW", RIPE, 30.0, 28.0},
	{"SG", APNIC, 40.0, 35.0},
	{"HK", APNIC, 80.0, 65.0},
	{"NZ", APNIC, 30.0, 26.0},
	// Six tiny countries whose resolvers all vanished (§2.3 finds six
	// countries, up to 63 hosts each, dropping to zero).
	{"VA", RIPE, 0.05, 0.0},
	{"TV", APNIC, 0.06, 0.0},
	{"NR", APNIC, 0.04, 0.0},
	{"GL", RIPE, 0.063, 0.0},
	{"FK", LACNIC, 0.03, 0.0},
	{"SH", AFRINIC, 0.02, 0.0},
	// Residual bucket for everything else.
	{"XO", RIPE, 7000.0, 4600.0},
}

// CountryIndex maps a country code to its position in Countries.
var CountryIndex = func() map[string]int {
	m := make(map[string]int, len(Countries))
	for i, c := range Countries {
		m[c.Code] = i
	}
	return m
}()

// RIROf returns the registry a country code belongs to (UNKNOWN codes map
// to RIPE, the registry of the residual bucket).
func RIROf(code string) RIR {
	if i, ok := CountryIndex[code]; ok {
		return Countries[i].RIR
	}
	return RIPE
}
