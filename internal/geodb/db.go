// Package geodb is the synthetic replacement for the MaxMind GeoIP and
// AS/RIR registries the paper relies on (§2.3). It deterministically
// partitions the (possibly scaled-down) IPv4 address space into network
// blocks, each owned by an autonomous system of some country, so that
// country-, AS-, and RIR-level aggregations of the measured resolver
// population reproduce the paper's distributions.
package geodb

import (
	"fmt"
	"net/netip"

	"goingwild/internal/prand"
)

// ASKind classifies an autonomous system; the paper finds 76.4% of the
// Top-25-network resolvers in broadband telecommunication providers.
type ASKind uint8

// AS kinds.
const (
	Broadband ASKind = iota
	Hosting
	Academic
	Enterprise
)

// String returns the kind's name.
func (k ASKind) String() string {
	switch k {
	case Broadband:
		return "broadband"
	case Hosting:
		return "hosting"
	case Academic:
		return "academic"
	case Enterprise:
		return "enterprise"
	default:
		return "unknown"
	}
}

// Fate describes what happened to the 28 networks that operated >1,000
// resolvers in Jan 2014 but showed none at the end of the study (§2.3):
// 21 blocked the scanner's primary vantage (still answered the
// verification scan), five added real DNS ingress/egress filtering, and
// two shut all resolvers down.
type Fate uint8

// Network fates.
const (
	FateNone          Fate = iota
	FateBlocksScanner      // blocks the primary vantage only
	FateFiltering          // DNS filtered for everyone
	FateShutdown           // resolvers switched off
)

// String returns the fate's name.
func (f Fate) String() string {
	switch f {
	case FateNone:
		return "none"
	case FateBlocksScanner:
		return "blocks-scanner"
	case FateFiltering:
		return "dns-filtering"
	case FateShutdown:
		return "shutdown"
	default:
		return "unknown"
	}
}

// Collapse is a population-collapse event: from Week onward only Survive
// of the AS's resolvers remain (the Argentinean telecom dropped from
// 737,424 resolvers to <17,000; a South Korean ISP from 434,567 to 22).
type Collapse struct {
	Week    int
	Survive float64
}

// AS describes one autonomous system.
type AS struct {
	ASN         uint32
	Name        string
	Country     string
	Kind        ASKind
	DynamicPool bool // dynamic consumer address pool (short DHCP leases)
	DensityMul  float64
	Collapse    *Collapse
	Fate        Fate
	FateWeek    int // week the fate takes effect

	// rir caches RIROf(Country) at build time so the per-probe lookup
	// path never touches the country→RIR string map.
	rir RIR
}

// RIRCode returns the AS's regional Internet registry (precomputed at
// build time).
func (as *AS) RIRCode() RIR { return as.rir }

// Location is the result of an IP lookup.
type Location struct {
	Country string
	RIR     RIR
	AS      *AS
}

// DB is the immutable registry for one simulated world.
type DB struct {
	order     uint
	blockBits uint     // log2(block size in addresses)
	blocks    []uint16 // block index -> AS index
	ases      []AS
	byASN     map[uint32]int
}

// Build constructs the registry for a 2^order address space. seed selects
// the world; identical (order, seed) pairs build identical registries.
func Build(order uint, seed uint64) (*DB, error) {
	if order < 10 || order > 32 {
		return nil, fmt.Errorf("geodb: order %d out of range [10, 32]", order)
	}
	nBlockBits := uint(12) // 4096 blocks
	if order < 16 {
		nBlockBits = order - 4
	}
	db := &DB{
		order:     order,
		blockBits: order - nBlockBits,
		byASN:     make(map[uint32]int),
	}
	db.buildASes(seed)
	db.assignBlocks(seed, 1<<nBlockBits)
	for i := range db.ases {
		db.ases[i].rir = RIROf(db.ases[i].Country)
	}
	return db, nil
}

// MustBuild is Build that panics on error, for statically valid orders.
func MustBuild(order uint, seed uint64) *DB {
	db, err := Build(order, seed)
	if err != nil {
		panic(err)
	}
	return db
}

// asTemplate describes the AS mix inside a country.
type asTemplate struct {
	suffix string
	kind   ASKind
	dyn    bool
	weight float64
}

var defaultASMix = []asTemplate{
	{"telecom", Broadband, true, 0.45},
	{"broadband", Broadband, true, 0.20},
	{"cable", Broadband, true, 0.12},
	{"hosting", Hosting, false, 0.10},
	{"univ", Academic, false, 0.03},
	{"corp", Enterprise, false, 0.10},
}

func (db *DB) buildASes(seed uint64) {
	for ci, c := range Countries {
		mix := defaultASMix
		for ai, tpl := range mix {
			as := AS{
				ASN:         uint32(1000 + ci*10 + ai),
				Name:        fmt.Sprintf("%s-%s", tpl.suffix, c.Code),
				Country:     c.Code,
				Kind:        tpl.kind,
				DynamicPool: tpl.dyn,
				DensityMul:  1.0,
			}
			// Plant the two narrated AS collapses inside the dominant
			// broadband provider of AR and KR.
			if ai == 0 {
				switch c.Code {
				case "AR":
					as.Collapse = &Collapse{Week: 30, Survive: 0.022}
				case "KR":
					as.Collapse = &Collapse{Week: 22, Survive: 0.0001}
				}
			}
			db.byASN[as.ASN] = len(db.ases)
			db.ases = append(db.ases, as)
		}
	}
	// The 28 fated networks: dense resolver pools (>1,000 resolvers at
	// paper scale) that disappear from the primary vantage.
	fates := make([]Fate, 0, 28)
	for i := 0; i < 21; i++ {
		fates = append(fates, FateBlocksScanner)
	}
	for i := 0; i < 5; i++ {
		fates = append(fates, FateFiltering)
	}
	fates = append(fates, FateShutdown, FateShutdown)
	hostCountries := []string{"US", "CN", "IN", "BR", "RU", "TR", "ID"}
	for i, fate := range fates {
		cc := hostCountries[prand.IntN(prand.Hash(seed, 0xFA7E, uint64(i)), len(hostCountries))]
		as := AS{
			ASN:         uint32(9000 + i),
			Name:        fmt.Sprintf("fated-%02d-%s", i, cc),
			Country:     cc,
			Kind:        Broadband,
			DynamicPool: false,
			DensityMul:  4.0, // dense pool so scaled-down worlds keep enough resolvers
			Fate:        fate,
			FateWeek:    10 + prand.IntN(prand.Hash(seed, 0xFEE7, uint64(i)), 30),
		}
		db.byASN[as.ASN] = len(db.ases)
		db.ases = append(db.ases, as)
	}
}

func (db *DB) assignBlocks(seed uint64, nBlocks int) {
	db.blocks = make([]uint16, nBlocks)
	// Country weights from week-0 population shares.
	weights := make([]float64, len(Countries))
	var total float64
	for _, c := range Countries {
		total += c.Week0
	}
	for i, c := range Countries {
		weights[i] = c.Week0 / total
	}
	// Reserve one block per fated AS, scattered deterministically.
	fatedBlocks := make(map[int]int) // block -> AS index
	for i := range db.ases {
		if db.ases[i].Fate == FateNone {
			continue
		}
		for try := uint64(0); ; try++ {
			b := prand.IntN(prand.Hash(seed, 0xB10C, uint64(db.ases[i].ASN), try), nBlocks)
			if _, taken := fatedBlocks[b]; !taken {
				fatedBlocks[b] = i
				break
			}
		}
	}
	for b := 0; b < nBlocks; b++ {
		if ai, ok := fatedBlocks[b]; ok {
			db.blocks[b] = uint16(ai)
			continue
		}
		cu := prand.UnitOf(seed, 0xC0DE, uint64(b))
		ci := prand.Pick(cu, weights)
		// AS inside the country, by the country's AS mix.
		mixWeights := make([]float64, len(defaultASMix))
		for i, tpl := range defaultASMix {
			mixWeights[i] = tpl.weight
		}
		// The AR and KR collapses dominate their country (77% and 50%
		// of the national population respectively).
		switch Countries[ci].Code {
		case "AR":
			mixWeights[0] = 0.77
		case "KR":
			mixWeights[0] = 0.50
		}
		au := prand.UnitOf(seed, 0xA5A5, uint64(b))
		ai := prand.Pick(au, mixWeights)
		db.blocks[b] = uint16(ci*len(defaultASMix) + ai)
	}
}

// Order returns the address-space width the registry was built for.
func (db *DB) Order() uint { return db.order }

// BlockOf returns the block index of an address.
func (db *DB) BlockOf(u uint32) int { return int(u >> db.blockBits) }

// LookupU32 resolves the location of an address given as uint32. Addresses
// outside the scaled space (order < 32) fold into it by masking, so
// callers never observe a miss.
func (db *DB) LookupU32(u uint32) Location {
	as := db.ASOfU32(u)
	return Location{Country: as.Country, RIR: as.rir, AS: as}
}

// ASOfU32 returns the owning AS of an address without building a
// Location — the form the per-probe hot paths use.
func (db *DB) ASOfU32(u uint32) *AS {
	if db.order < 32 {
		u &= uint32(1)<<db.order - 1
	}
	return &db.ases[db.blocks[db.BlockOf(u)]]
}

// NumBlocks returns how many network blocks the space is partitioned
// into.
func (db *DB) NumBlocks() int { return len(db.blocks) }

// BlockBase returns the first address of block b.
func (db *DB) BlockBase(b int) uint32 { return uint32(b) << db.blockBits }

// Lookup resolves the location of an address.
func (db *DB) Lookup(addr netip.Addr) Location {
	b := addr.As4()
	u := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return db.LookupU32(u)
}

// ASByNumber returns the AS with the given number, or nil.
func (db *DB) ASByNumber(asn uint32) *AS {
	if i, ok := db.byASN[asn]; ok {
		return &db.ases[i]
	}
	return nil
}

// ASes returns all registered autonomous systems.
func (db *DB) ASes() []AS { return db.ases }

// CountryWeightAt interpolates a country's population share at the given
// week of the 55-week study, as a fraction of the week's world total.
func CountryWeightAt(code string, week int) float64 {
	i, ok := CountryIndex[code]
	if !ok {
		return 0
	}
	c := Countries[i]
	f := float64(week) / 55.0
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	count := c.Week0 + (c.Week55-c.Week0)*f
	var total float64
	for _, cc := range Countries {
		total += cc.Week0 + (cc.Week55-cc.Week0)*f
	}
	return count / total
}

// WorldDeclineAt returns the whole population's size at the given week
// relative to week 0 (the paper's responder total shrinks from ≈31.2M to
// ≈22.6M across the study).
func WorldDeclineAt(week int) float64 {
	f := float64(week) / 55.0
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	var w0, wf float64
	for _, c := range Countries {
		w0 += c.Week0
		wf += c.Week0 + (c.Week55-c.Week0)*f
	}
	return wf / w0
}

// CountryDeclineAt returns a country's population at the given week
// relative to its own week-0 population.
func CountryDeclineAt(code string, week int) float64 {
	i, ok := CountryIndex[code]
	if !ok {
		return 1
	}
	c := Countries[i]
	if c.Week0 <= 0 {
		return 0
	}
	f := float64(week) / 55.0
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return (c.Week0 + (c.Week55-c.Week0)*f) / c.Week0
}
