package geodb

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBuildRejectsBadOrder(t *testing.T) {
	for _, order := range []uint{0, 9, 33} {
		if _, err := Build(order, 1); err == nil {
			t.Errorf("order %d accepted", order)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(20, 7)
	b := MustBuild(20, 7)
	for u := uint32(0); u < 1<<20; u += 4099 {
		la, lb := a.LookupU32(u), b.LookupU32(u)
		if la.Country != lb.Country || la.AS.ASN != lb.AS.ASN {
			t.Fatalf("lookup(%d) differs between identical builds", u)
		}
	}
}

func TestLookupConsistentWithinBlock(t *testing.T) {
	db := MustBuild(20, 3)
	blockSize := uint32(1) << (20 - 12)
	base := 17 * blockSize
	first := db.LookupU32(base)
	for off := uint32(1); off < blockSize; off += 13 {
		if got := db.LookupU32(base + off); got.AS.ASN != first.AS.ASN {
			t.Fatalf("block split between ASes at offset %d", off)
		}
	}
}

func TestCountrySharesApproximateTable1(t *testing.T) {
	db := MustBuild(22, 11)
	counts := map[string]int{}
	const samples = 1 << 18
	for i := 0; i < samples; i++ {
		u := uint32(i) << 4 // stride through the space
		counts[db.LookupU32(u).Country]++
	}
	var total float64
	for _, c := range Countries {
		total += c.Week0
	}
	// The three biggest countries must appear within 3 percentage points
	// of their intended share (block granularity adds variance).
	for _, code := range []string{"US", "CN", "XO"} {
		want := Countries[CountryIndex[code]].Week0 / total
		got := float64(counts[code]) / samples
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s share = %.3f, want ≈ %.3f", code, got, want)
		}
	}
	// Ordering shape: US ahead of CN ahead of TR.
	if !(counts["US"] > counts["CN"]) {
		t.Errorf("US (%d) not ahead of CN (%d)", counts["US"], counts["CN"])
	}
	if !(counts["CN"] > counts["TR"]) {
		t.Errorf("CN (%d) not ahead of TR (%d)", counts["CN"], counts["TR"])
	}
}

func TestRIRMappingMatchesTable2Regions(t *testing.T) {
	cases := map[string]RIR{
		"US": ARIN, "CA": ARIN,
		"CN": APNIC, "IN": APNIC, "VN": APNIC, "JP": APNIC,
		"MX": LACNIC, "AR": LACNIC, "BR": LACNIC,
		"TR": RIPE, "IT": RIPE, "RU": RIPE, "IR": RIPE, "LB": RIPE,
		"EG": AFRINIC, "DZ": AFRINIC, "ZA": AFRINIC,
	}
	for code, want := range cases {
		if got := RIROf(code); got != want {
			t.Errorf("RIROf(%s) = %v, want %v", code, got, want)
		}
	}
}

func TestFatedNetworksPresent(t *testing.T) {
	db := MustBuild(20, 5)
	var blocks, filters, shutdowns int
	for _, as := range db.ASes() {
		switch as.Fate {
		case FateBlocksScanner:
			blocks++
		case FateFiltering:
			filters++
		case FateShutdown:
			shutdowns++
		}
	}
	if blocks != 21 || filters != 5 || shutdowns != 2 {
		t.Errorf("fates = %d/%d/%d, want 21/5/2", blocks, filters, shutdowns)
	}
}

func TestCollapseEventsPlanted(t *testing.T) {
	db := MustBuild(20, 5)
	var ar, kr *AS
	for i, as := range db.ASes() {
		if as.Collapse == nil {
			continue
		}
		switch as.Country {
		case "AR":
			ar = &db.ASes()[i]
		case "KR":
			kr = &db.ASes()[i]
		}
	}
	if ar == nil || ar.Collapse.Survive > 0.05 {
		t.Error("Argentinean collapse AS missing or too mild")
	}
	if kr == nil || kr.Collapse.Survive > 0.01 {
		t.Error("South Korean collapse AS missing or too mild")
	}
}

func TestWorldDeclineMonotone(t *testing.T) {
	prev := WorldDeclineAt(0)
	if math.Abs(prev-1.0) > 1e-9 {
		t.Fatalf("week 0 decline = %f, want 1", prev)
	}
	for w := 1; w <= 55; w++ {
		cur := WorldDeclineAt(w)
		if cur > prev+1e-9 {
			t.Fatalf("world population grew at week %d", w)
		}
		prev = cur
	}
	if end := WorldDeclineAt(55); end < 0.65 || end > 0.80 {
		t.Errorf("week 55 decline = %.3f, want ≈ 22.6/31.2 ≈ 0.72", end)
	}
}

func TestCountryDeclineMatchesTable1(t *testing.T) {
	cases := map[string]float64{
		"US": 1 - 0.142,
		"TW": 1 - 0.573,
		"IN": 1 + 0.127,
		"AR": 1 - 0.75,
		"LB": 1 + 0.767,
	}
	for code, want := range cases {
		got := CountryDeclineAt(code, 55)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("CountryDeclineAt(%s, 55) = %.3f, want %.3f", code, got, want)
		}
	}
}

func TestLookupFoldsOutOfSpaceAddresses(t *testing.T) {
	db := MustBuild(16, 9)
	f := func(u uint32) bool {
		loc := db.LookupU32(u)
		folded := db.LookupU32(u & 0xFFFF)
		return loc.AS.ASN == folded.AS.ASN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAddrForm(t *testing.T) {
	db := MustBuild(32, 1)
	addr := netip.MustParseAddr("93.184.216.34")
	loc := db.Lookup(addr)
	if loc.AS == nil || loc.Country == "" {
		t.Fatalf("lookup returned empty location: %+v", loc)
	}
	if loc.RIR != RIROf(loc.Country) {
		t.Errorf("RIR mismatch: %v vs %v", loc.RIR, RIROf(loc.Country))
	}
}

func TestRDNSTokens(t *testing.T) {
	db := MustBuild(20, 13)
	var withRDNS, dynamic, fromDynPool int
	for u := uint32(0); u < 1<<20; u += 257 {
		name := db.RDNSName(13, u)
		if name == "" {
			continue
		}
		withRDNS++
		if db.LookupU32(u).AS.DynamicPool {
			fromDynPool++
			if HasDynamicToken(name) {
				dynamic++
			}
		}
	}
	if withRDNS == 0 || fromDynPool == 0 {
		t.Fatal("no rDNS names generated")
	}
	frac := float64(dynamic) / float64(fromDynPool)
	if frac < 0.60 || frac > 0.80 {
		t.Errorf("dynamic-token share among pool hosts = %.2f, want ≈ 0.70", frac)
	}
}

func TestHasDynamicToken(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"1-2-3-4.dynamic.telecom-ar.example", true},
		{"host-1-2-3-4.broadband.isp.example", true},
		{"dsl-pool-7.provider.example", true},
		{"static-1-2-3-4.corp-us.example", false},
		{"mydynamicserver.example", false}, // token not delimited
		{"", false},
	}
	for _, c := range cases {
		if got := HasDynamicToken(c.name); got != c.want {
			t.Errorf("HasDynamicToken(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
