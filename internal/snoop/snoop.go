// Package snoop implements the resolver-utilization study of §2.6: DNS
// cache snooping. Non-recursive NS queries for 15 TLDs are sent to every
// resolver once per simulated hour for 36 hours; watching the remaining
// TTLs reveals whether real clients keep re-adding entries to the cache —
// the signature of a resolver that is actually in use.
package snoop

import (
	"context"

	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// Class is the utilization verdict for one resolver.
type Class uint8

// Utilization classes, mirroring the paper's breakdown.
const (
	ClassUnreachable  Class = iota // never answered a snooping probe
	ClassEmpty                     // empty responses instead of NS records
	ClassSingleStop                // one response per TLD, then silence
	ClassStaticTTL                 // static or zero TTL on every probe
	ClassInUse                     // ≥3 TLDs re-added after expiry
	ClassResetting                 // TTL reset ahead of expiry
	ClassDecreasing                // decreasing TTL, no expiry in window
	ClassInsufficient              // too little signal to decide
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassUnreachable:
		return "unreachable"
	case ClassEmpty:
		return "empty-responses"
	case ClassSingleStop:
		return "single-then-stop"
	case ClassStaticTTL:
		return "static-ttl"
	case ClassInUse:
		return "in-use"
	case ClassResetting:
		return "ttl-resetting"
	case ClassDecreasing:
		return "decreasing-only"
	default:
		return "insufficient"
	}
}

// Config parameterizes the study.
type Config struct {
	// TLDs are the snooped top-level domains (the paper's 15).
	TLDs []string
	// Hours is the monitoring window (the paper's 36).
	Hours int
	// StartDelayHours is the gap between the identifying scan and the
	// first probe; churn during the gap produces the unreachable share.
	StartDelayHours int
	// MinRefreshTLDs is the re-add threshold to flag a resolver as in
	// use (the paper requires 3 to rule out other scanners' traffic).
	MinRefreshTLDs int
	// BaseTTL is the TLD NS TTL published by the simulated zones.
	BaseTTL uint32
	// Week is the study's position in the longitudinal timeline.
	Week int
}

// DefaultConfig mirrors §2.6.
func DefaultConfig(tlds []string) Config {
	return Config{
		TLDs:            tlds,
		Hours:           36,
		StartDelayHours: 8,
		MinRefreshTLDs:  3,
		BaseTTL:         wildnet.SnoopTTLBase,
		Week:            43, // Nov 30, 2014
	}
}

// Verdict is one resolver's outcome.
type Verdict struct {
	Addr Class
	// RefreshedTLDs counts TLDs observed being re-added after expiry.
	RefreshedTLDs int
	// FastRefresh marks at least one re-add within seconds of expiry
	// (the paper's "frequently used", 38.7%).
	FastRefresh bool
}

// Result aggregates the study.
type Result struct {
	Scanned   int
	Responded int
	Counts    map[Class]int
	// Frequent counts in-use resolvers with a fast re-add.
	Frequent int
	// Verdicts maps resolver address to its class.
	Verdicts map[uint32]Class
}

// series is the per-(resolver, tld) observation history.
type obs struct {
	hour int
	o    scanner.SnoopObs
}

// Run executes the snooping study against a resolver population.
// Cancellation checkpoints sit between hourly rounds; a cancelled run
// classifies whatever history it gathered and returns it with ctx.Err().
func Run(ctx context.Context, sc *scanner.Scanner, clock interface{ SetTime(wildnet.Time) }, resolvers []uint32, cfg Config) (*Result, error) {
	hist := make(map[uint32][][]obs, len(resolvers)) // addr -> tldIdx -> history
	for _, u := range resolvers {
		hist[u] = make([][]obs, len(cfg.TLDs))
	}
	seq := make([]uint16, len(cfg.TLDs)) // per-TLD probe counter
	for h := 0; h < cfg.Hours && ctx.Err() == nil; h++ {
		abs := cfg.StartDelayHours + h
		clock.SetTime(wildnet.Time{Week: cfg.Week, Day: abs / 24, Hour: abs % 24})
		for ti, tld := range cfg.TLDs {
			round, err := sc.SnoopRoundContext(ctx, resolvers, tld, seq[ti])
			seq[ti]++
			for u, o := range round {
				hist[u][ti] = append(hist[u][ti], obs{hour: h, o: o})
			}
			if err != nil {
				break
			}
		}
	}
	res := &Result{
		Scanned:  len(resolvers),
		Counts:   map[Class]int{},
		Verdicts: make(map[uint32]Class, len(resolvers)),
	}
	for _, u := range resolvers {
		v := classify(hist[u], cfg)
		res.Verdicts[u] = v.Addr
		res.Counts[v.Addr]++
		if v.Addr != ClassUnreachable {
			res.Responded++
		}
		if v.Addr == ClassInUse && v.FastRefresh {
			res.Frequent++
		}
	}
	return res, ctx.Err()
}

// classify reduces one resolver's observation history to a verdict.
func classify(tldHist [][]obs, cfg Config) Verdict {
	var any, allEmpty = false, true
	var totalResponses, answeredTLDs, singleTLDs int
	var ttls []uint32
	refreshed := 0
	fast := false
	resettingVotes, decreasingVotes, cyclingVotes := 0, 0, 0
	for _, hist := range tldHist {
		if len(hist) == 0 {
			continue
		}
		any = true
		answeredTLDs++
		totalResponses += len(hist)
		if len(hist) == 1 {
			singleTLDs++
		}
		empty := true
		for _, e := range hist {
			if !e.o.Empty {
				empty = false
				ttls = append(ttls, e.o.TTL)
			}
		}
		if empty {
			continue
		}
		allEmpty = false
		readd, f, pattern := analyzeTLD(hist, cfg)
		if readd {
			refreshed++
			fast = fast || f
			cyclingVotes++
		}
		switch pattern {
		case patternResetting:
			resettingVotes++
		case patternDecreasing:
			decreasingVotes++
		}
	}
	if !any {
		return Verdict{Addr: ClassUnreachable}
	}
	if allEmpty {
		return Verdict{Addr: ClassEmpty}
	}
	// Single response per answered TLD, then silence.
	if answeredTLDs > 0 && singleTLDs == answeredTLDs && totalResponses == answeredTLDs && cfg.Hours > 2 {
		return Verdict{Addr: ClassSingleStop}
	}
	// Static TTLs: every observed TTL identical (or zero).
	if len(ttls) > 3 {
		static := true
		for _, t := range ttls[1:] {
			if t != ttls[0] {
				static = false
				break
			}
		}
		if static {
			return Verdict{Addr: ClassStaticTTL}
		}
	}
	if refreshed >= cfg.MinRefreshTLDs {
		return Verdict{Addr: ClassInUse, RefreshedTLDs: refreshed, FastRefresh: fast}
	}
	if resettingVotes > decreasingVotes && resettingVotes > cyclingVotes {
		return Verdict{Addr: ClassResetting}
	}
	if decreasingVotes > 0 {
		return Verdict{Addr: ClassDecreasing}
	}
	return Verdict{Addr: ClassInsufficient, RefreshedTLDs: refreshed}
}

type ttlPattern uint8

const (
	patternOther ttlPattern = iota
	patternResetting
	patternDecreasing
)

// analyzeTLD inspects one TLD's TTL time series: was the entry re-added
// after expiry, was the re-add immediate, and what shape does the series
// have otherwise.
func analyzeTLD(hist []obs, cfg Config) (readd bool, fastRefresh bool, pattern ttlPattern) {
	base := int64(cfg.BaseTTL)
	nearBase := 0
	cached := 0
	decreasing := true
	resets := 0
	var prev *obs
	for k := range hist {
		e := &hist[k]
		if e.o.Cached {
			cached++
			if int64(e.o.TTL) >= base-900 {
				nearBase++
			}
		}
		if prev != nil {
			dt := int64(e.hour-prev.hour) * 3600
			switch {
			case prev.o.Cached && e.o.Cached:
				expected := int64(prev.o.TTL) - dt
				if expected < 0 {
					// The entry must have expired in between; seeing
					// it cached again means a client re-added it.
					readd = true
					// Immediate refresh: the new TTL is consistent
					// with re-caching within seconds of expiry.
					sinceExpiry := dt - int64(prev.o.TTL)
					ifImmediate := base - sinceExpiry
					diff := int64(e.o.TTL) - ifImmediate
					if diff < 0 {
						diff = -diff
					}
					if diff <= 30 {
						fastRefresh = true
					}
				} else if int64(e.o.TTL) > expected+60 {
					// TTL jumped up before expiry.
					if int64(e.o.TTL) >= base-900 {
						resets++
					} else {
						readd = true
					}
				}
				if e.o.TTL >= prev.o.TTL {
					decreasing = false
				}
			case !prev.o.Cached && e.o.Cached:
				readd = true
			}
		}
		prev = e
	}
	// Entries that keep snapping back to near-maximum TTL without ever
	// expiring are proactive refreshers / load-balanced pools.
	if resets >= 2 && nearBase >= cached*3/4 && !readd {
		return false, false, patternResetting
	}
	if cached > 0 && decreasing && !readd {
		return readd, fastRefresh, patternDecreasing
	}
	return readd, fastRefresh, patternOther
}
