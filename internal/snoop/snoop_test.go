package snoop

import (
	"context"
	"math"
	"testing"
	"time"

	"goingwild/internal/domains"
	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func runStudy(t *testing.T, order uint) (*Result, int) {
	t.Helper()
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(order))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	t.Cleanup(func() { tr.Close() })
	sc := scanner.New(tr, scanner.Options{Workers: 4, SettleDelay: time.Millisecond})
	cfg := DefaultConfig(domains.SnoopedTLDs)
	tr.SetTime(wildnet.Time{Week: cfg.Week})
	sweep, err := sc.Sweep(order, 21, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	res, err := Run(context.Background(), sc, tr, resolvers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, len(resolvers)
}

func TestUtilizationStudyShape(t *testing.T) {
	res, scanned := runStudy(t, 16)
	if res.Scanned != scanned || scanned < 200 {
		t.Fatalf("scanned = %d", scanned)
	}
	respShare := float64(res.Responded) / float64(res.Scanned)
	if math.Abs(respShare-0.832) > 0.08 {
		t.Errorf("responded share = %.3f, want ≈ 0.832 (§2.6)", respShare)
	}
	inUse := float64(res.Counts[ClassInUse]) / float64(res.Scanned)
	if inUse < 0.45 || inUse > 0.75 {
		t.Errorf("in-use share = %.3f, want ≈ 0.616", inUse)
	}
	frequent := float64(res.Frequent) / float64(res.Scanned)
	if frequent < 0.25 || frequent > 0.50 {
		t.Errorf("frequent share = %.3f, want ≈ 0.387", frequent)
	}
	empty := float64(res.Counts[ClassEmpty]) / float64(res.Scanned)
	if empty < 0.03 || empty > 0.12 {
		t.Errorf("empty share = %.3f, want ≈ 0.073", empty)
	}
	static := float64(res.Counts[ClassStaticTTL]) / float64(res.Scanned)
	if static < 0.01 || static > 0.08 {
		t.Errorf("static share = %.3f, want ≈ 0.040", static)
	}
	resetting := float64(res.Counts[ClassResetting]) / float64(res.Scanned)
	if resetting < 0.08 || resetting > 0.30 {
		t.Errorf("resetting share = %.3f, want ≈ 0.196", resetting)
	}
	// In-use must dominate, frequent a large subset of it, as in §2.6.
	if res.Frequent > res.Counts[ClassInUse] {
		t.Error("frequent exceeds in-use")
	}
	if res.Counts[ClassInUse] <= res.Counts[ClassResetting] {
		t.Error("in-use not the dominant class")
	}
}

func TestClassifySynthetic(t *testing.T) {
	cfg := DefaultConfig([]string{"com", "net", "org", "de"})
	mk := func(perTLD ...[]scanner.SnoopObs) [][]obs {
		out := make([][]obs, len(perTLD))
		for ti, series := range perTLD {
			for h, o := range series {
				out[ti] = append(out[ti], obs{hour: h, o: o})
			}
		}
		return out
	}
	cached := func(ttl uint32) scanner.SnoopObs {
		return scanner.SnoopObs{Answered: true, Cached: true, TTL: ttl}
	}
	empty := scanner.SnoopObs{Answered: true, Empty: true}

	// All-empty responder.
	v := classify(mk(
		[]scanner.SnoopObs{empty, empty, empty},
		[]scanner.SnoopObs{empty, empty},
		nil, nil,
	), cfg)
	if v.Addr != ClassEmpty {
		t.Errorf("all-empty = %v", v.Addr)
	}

	// Unreachable.
	v = classify(mk(nil, nil, nil, nil), cfg)
	if v.Addr != ClassUnreachable {
		t.Errorf("unreachable = %v", v.Addr)
	}

	// Static TTL.
	st := []scanner.SnoopObs{cached(300), cached(300), cached(300), cached(300), cached(300)}
	v = classify(mk(st, st, nil, nil), cfg)
	if v.Addr != ClassStaticTTL {
		t.Errorf("static = %v", v.Addr)
	}

	// In-use with immediate refresh: 6h TTL, hourly probes; after the
	// wrap the TTL is exactly consistent with immediate re-caching.
	base := cfg.BaseTTL
	series := make([]scanner.SnoopObs, 0, 10)
	rem := base - 100
	for h := 0; h < 10; h++ {
		series = append(series, cached(rem))
		if rem <= 3600 {
			rem = rem + base - 3600 // immediate refresh at expiry
		} else {
			rem -= 3600
		}
	}
	v = classify(mk(series, series, series, series), cfg)
	if v.Addr != ClassInUse || !v.FastRefresh {
		t.Errorf("fast in-use = %v fast=%v", v.Addr, v.FastRefresh)
	}

	// Decreasing-only: a 48h TTL never expires inside the window.
	long := make([]scanner.SnoopObs, 0, 10)
	remL := uint32(48 * 3600)
	for h := 0; h < 10; h++ {
		long = append(long, cached(remL))
		remL -= 3600
	}
	v = classify(mk(long, long, nil, nil), cfg)
	if v.Addr != ClassDecreasing {
		t.Errorf("decreasing = %v", v.Addr)
	}

	// Resetting: always near-max TTL.
	resetting := []scanner.SnoopObs{
		cached(base - 10), cached(base - 200), cached(base - 40),
		cached(base - 300), cached(base - 60), cached(base - 90),
	}
	v = classify(mk(resetting, resetting, resetting, nil), cfg)
	if v.Addr != ClassResetting {
		t.Errorf("resetting = %v", v.Addr)
	}

	// Single response then stop.
	v = classify(mk(
		[]scanner.SnoopObs{cached(500)},
		[]scanner.SnoopObs{cached(900)},
		nil, nil,
	), cfg)
	if v.Addr != ClassSingleStop {
		t.Errorf("single-stop = %v", v.Addr)
	}
}

func TestInUseThreshold(t *testing.T) {
	// Fewer than MinRefreshTLDs re-adds must not flag in-use: other
	// scanners' probes refresh one or two TLDs too (§2.6 requires 3).
	cfg := DefaultConfig([]string{"com", "net", "org", "de", "fr"})
	base := cfg.BaseTTL
	cached := func(ttl uint32) scanner.SnoopObs {
		return scanner.SnoopObs{Answered: true, Cached: true, TTL: ttl}
	}
	refreshing := []scanner.SnoopObs{cached(1800), cached(base - 1800), cached(base - 5400)}
	cold := []scanner.SnoopObs{cached(5000), cached(5000 - 3600)}
	hist := [][]obs{}
	for ti, series := range [][]scanner.SnoopObs{refreshing, refreshing, cold, cold, cold} {
		var h []obs
		for k, o := range series {
			h = append(h, obs{hour: k, o: o})
		}
		_ = ti
		hist = append(hist, h)
	}
	v := classify(hist, cfg)
	if v.Addr == ClassInUse {
		t.Errorf("2 refreshed TLDs flagged in-use (threshold is %d)", cfg.MinRefreshTLDs)
	}
}
