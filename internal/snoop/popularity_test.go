package snoop

import (
	"context"
	"testing"
	"time"

	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

func TestPopularityRecoversPlantedGaps(t *testing.T) {
	w, err := wildnet.NewWorld(wildnet.DefaultConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	tr := wildnet.NewMemTransport(w, wildnet.VantagePrimary)
	defer tr.Close()
	sc := scanner.New(tr, scanner.Options{Workers: 4, SettleDelay: time.Millisecond})
	cfg := DefaultPopularityConfig()
	tr.SetTime(wildnet.Time{Week: cfg.Week})
	sweep, err := sc.Sweep(17, 77, w.ScanBlacklist())
	if err != nil {
		t.Fatal(err)
	}
	resolvers := sweep.NOERROR()
	estimates, err := EstimatePopularity(context.Background(), sc, tr, resolvers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(estimates) < 20 {
		t.Fatalf("only %d popularity estimates", len(estimates))
	}
	// Estimates for slow in-use resolvers must land near the planted
	// re-caching gap; the probing resolution is one minute.
	checked, close := 0, 0
	for _, est := range estimates {
		planted, ok := w.PlantedSnoopGap(est.Addr, wildnet.Time{Week: cfg.Week, Day: 2}, cfg.TLDIdx)
		if !ok {
			continue
		}
		checked++
		diff := est.GapSeconds - planted
		if diff < 0 {
			diff = -diff
		}
		if diff <= 90 { // one probe interval + rounding
			close++
		}
	}
	if checked == 0 {
		t.Fatal("no slow in-use resolvers among estimates")
	}
	if float64(close)/float64(checked) < 0.8 {
		t.Errorf("only %d/%d gap estimates within 90s of ground truth", close, checked)
	}
	// Popularity ordering: fast refreshers (gap ≈ 0) must report higher
	// request rates than slow ones.
	var fastRate, slowRate float64
	var nFast, nSlow int
	for _, est := range estimates {
		if _, ok := w.PlantedSnoopGap(est.Addr, wildnet.Time{Week: cfg.Week, Day: 2}, cfg.TLDIdx); ok {
			slowRate += est.RequestsPerHour
			nSlow++
		} else if est.GapSeconds <= 60 {
			fastRate += est.RequestsPerHour
			nFast++
		}
	}
	if nFast > 0 && nSlow > 0 && fastRate/float64(nFast) <= slowRate/float64(nSlow) {
		t.Errorf("popularity ordering broken: fast %.1f/h vs slow %.1f/h",
			fastRate/float64(nFast), slowRate/float64(nSlow))
	}
}
