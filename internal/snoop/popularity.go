package snoop

import (
	"context"

	"goingwild/internal/scanner"
	"goingwild/internal/wildnet"
)

// Fine-grained cache snooping (the follow-up §2.6 suggests, after Rajab
// et al.): probing a TLD at minute granularity reveals the time gap
// between an entry's expiry and its re-caching by the next real client
// lookup. The gap's inverse approximates the resolver's client-lookup
// rate — its popularity.

// PopularityEstimate is one resolver's recovered activity estimate.
type PopularityEstimate struct {
	Addr uint32
	// GapSeconds is the observed expiry→re-cache gap.
	GapSeconds int64
	// RequestsPerHour approximates client pressure on the probed zone
	// as the inverse of the gap.
	RequestsPerHour float64
	// Observations counts the gap samples averaged.
	Observations int
}

// PopularityConfig parameterizes the fine-grained probe.
type PopularityConfig struct {
	// TLD is the snooped zone; TLDIdx its index in the hourly study's
	// TLD list (the probe sequence numbers continue from there).
	TLD    string
	TLDIdx int
	// Minutes is the probing duration at one-minute intervals.
	Minutes int
	// BaseTTL is the zone's NS TTL.
	BaseTTL uint32
	// Week positions the probe on the study timeline.
	Week int
}

// DefaultPopularityConfig probes the busiest zone for four simulated
// hours.
func DefaultPopularityConfig() PopularityConfig {
	return PopularityConfig{TLD: "com", TLDIdx: 3, Minutes: 240, BaseTTL: wildnet.SnoopTTLBase, Week: 43}
}

// EstimatePopularity probes the resolvers every minute and reconstructs
// re-caching gaps from TTL arithmetic: when an entry expires at time E
// and a later probe at time T observes remaining TTL r, the re-caching
// happened at T−(BaseTTL−r), so the gap is that instant minus E.
// Cancellation checkpoints sit between minute rounds; a cancelled run
// returns the estimates recoverable so far together with ctx.Err().
func EstimatePopularity(ctx context.Context, sc *scanner.Scanner, clock interface{ SetTime(wildnet.Time) }, resolvers []uint32, cfg PopularityConfig) ([]PopularityEstimate, error) {
	type track struct {
		lastTTL    int64
		lastAt     int64 // seconds
		haveLast   bool
		gapSum     int64
		gapSamples int
	}
	tracks := make(map[uint32]*track, len(resolvers))
	for _, u := range resolvers {
		tracks[u] = &track{}
	}
	base := int64(cfg.BaseTTL)
	for minute := 0; minute < cfg.Minutes && ctx.Err() == nil; minute++ {
		now := wildnet.Time{Week: cfg.Week, Day: 2, Hour: minute / 60, Minute: minute % 60}
		clock.SetTime(now)
		sec := now.AbsSeconds()
		round, _ := sc.SnoopRoundContext(ctx, resolvers, cfg.TLD, uint16(1000+minute))
		for u, o := range round {
			tr := tracks[u]
			if !o.Cached {
				continue
			}
			ttl := int64(o.TTL)
			if tr.haveLast {
				expected := tr.lastTTL - (sec - tr.lastAt)
				if expected < 0 && ttl > 0 {
					// The entry expired between probes and is back:
					// recover when it was re-added.
					expiry := tr.lastAt + tr.lastTTL
					readd := sec - (base - ttl)
					if gap := readd - expiry; gap >= 0 && gap < base {
						tr.gapSum += gap
						tr.gapSamples++
					}
				}
			}
			tr.lastTTL = ttl
			tr.lastAt = sec
			tr.haveLast = true
		}
	}
	var out []PopularityEstimate
	for _, u := range resolvers {
		tr := tracks[u]
		if tr.gapSamples == 0 {
			continue
		}
		gap := tr.gapSum / int64(tr.gapSamples)
		est := PopularityEstimate{Addr: u, GapSeconds: gap, Observations: tr.gapSamples}
		if gap > 0 {
			est.RequestsPerHour = 3600 / float64(gap)
		} else {
			est.RequestsPerHour = 3600 // re-cached within the probing resolution
		}
		out = append(out, est)
	}
	return out, ctx.Err()
}
