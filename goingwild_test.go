package goingwild

import (
	"testing"

	"goingwild/internal/domains"
)

func TestFacadeEndToEnd(t *testing.T) {
	study, err := NewStudy(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if got := ScaleOf(study); got != Scale(1<<16) {
		t.Errorf("scale = %v, want %v", got, Scale(1<<16))
	}
	if len(AllCategories()) != 13 {
		t.Errorf("categories = %d", len(AllCategories()))
	}
	sweep, err := study.SweepAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Total() == 0 {
		t.Fatal("empty sweep through the facade")
	}
	res, err := study.RunDomainStudy(50, []Category{domains.Dating})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Pre == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Order = 2
	if _, err := NewStudy(cfg); err == nil {
		t.Error("bad order accepted")
	}
}
