// Package goingwild is the public facade of the Going Wild reproduction:
// a from-scratch Go implementation of the measurement and classification
// system of "Going Wild: Large-Scale Classification of Open DNS
// Resolvers" (Kührer, Hupperich, Bushart, Rossow, Holz; IMC 2015),
// running against a deterministic virtual IPv4 Internet.
//
// The typical entry point is a Study:
//
//	study, err := goingwild.NewStudy(goingwild.DefaultConfig(20))
//	if err != nil { ... }
//	defer study.Close()
//	series, err := study.RunWeeklySeries()            // Figure 1, Tables 1–2
//	result, err := study.RunDomainStudy(50, nil)      // the Figure-3 chain
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package goingwild

import (
	"goingwild/internal/analysis"
	"goingwild/internal/core"
	"goingwild/internal/domains"
)

// Config parameterizes a study; see core.Config for field documentation.
type Config = core.Config

// Study owns one simulated world and the measurement stack.
type Study = core.Study

// DomainStudyResult is the outcome of the Figure-3 processing chain.
type DomainStudyResult = core.DomainStudyResult

// Category is one of the paper's 13 website categories.
type Category = domains.Category

// Scale extrapolates simulated counts to the paper's 2^32 space.
type Scale = analysis.Scale

// DefaultConfig mirrors the paper's setup at a reduced address-space
// order (16–20 for interactive use, 20–24 for benchmarks).
func DefaultConfig(order uint) Config { return core.DefaultConfig(order) }

// NewStudy builds the virtual Internet and wires the scanner,
// acquisition client, and classification pipeline to it.
func NewStudy(cfg Config) (*Study, error) { return core.NewStudy(cfg) }

// AllCategories lists the paper's 13 domain categories.
func AllCategories() []Category { return domains.AllCategories }

// ScaleOf returns the extrapolation factor for a study.
func ScaleOf(s *Study) Scale { return Scale(s.World.ScaleFactor()) }
